//===- cfg/Cfg.h - First-class CFG/Module IR over BOR-RISC ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit control-flow-graph representation of a BOR-RISC program:
/// a Module owns BasicBlocks (straight-line instruction runs with typed
/// successor edges, including brr's two-target form), a linearization
/// order (the Layout), the data segment, and symbol annotations.
///
/// The two conversions are lossless in the direction that matters:
///
///  * buildModule(Program) performs leader analysis (index 0, every
///    control/marker successor, every branch/jump/brr target) and edge
///    discovery, preserving the program's linear order as the Layout.
///  * emitProgram(Module) re-linearizes the Layout deterministically:
///    branch targets are re-resolved, conditional branches are inverted
///    when their taken successor became the fall-through neighbour,
///    unconditional jumps are inserted where a fall-through edge no
///    longer lands on the next block, and branches whose offsets outgrow
///    their encoding field are relaxed to a branch-around-jump form
///    (fixed-point, decisions latched so the loop terminates).
///
/// For a program that is already linear — every fall-through edge
/// adjacent, as buildModule produces — emitProgram is byte-identical to
/// the source program: `emitProgram(buildModule(P)) == P`. Reordering the
/// Layout (the profile-guided passes in src/opt/ do exactly this) keeps
/// execution equivalent: BOR-RISC code never materializes code addresses
/// into data, jal return addresses are computed from the dynamic PC, and
/// brr decisions depend only on the decider stream, not on code placement.
///
/// Everything structure-related that used to be re-derived independently
/// (sim/Decode run lengths, ckpt/Bbv block keys, instr/Transform region
/// shapes) now consumes this one IR.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CFG_CFG_H
#define BOR_CFG_CFG_H

#include "isa/Program.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bor {
namespace cfg {

/// Dense block identifier: an index into Module's block table. Ids are
/// stable across layout edits (the Layout permutes ids, never renames
/// them), which is what lets profiles stay keyed to blocks while the
/// optimizer moves code.
using BlockId = uint32_t;
constexpr BlockId NoBlock = 0xffffffffu;

/// Edge classification. A conditional branch has Taken + Fall; a brr has
/// BrrTaken + Fall (kept distinct because its taken probability is an
/// encoding property, and the optimizer must never invert it); jmp has
/// Taken; jal has Call + Fall (the fall-through block is where the callee
/// returns to); jalr and halt have no static successors.
enum class EdgeKind : uint8_t {
  Fall,     ///< Sequential successor.
  Taken,    ///< Conditional-branch taken target, or jmp target.
  BrrTaken, ///< brr taken target (probability (1/2)^(freq+1)).
  Call,     ///< jal target (control returns to the Fall successor).
};

const char *edgeKindName(EdgeKind K);

struct Edge {
  BlockId Dst = NoBlock;
  EdgeKind Kind = EdgeKind::Fall;
};

/// A maximal straight-line instruction run. The last instruction is the
/// terminator when it is a control instruction; marker and leader-split
/// blocks end with a plain instruction and a Fall edge. Control
/// instructions keep their original Imm field, but it is dead weight: the
/// authoritative target is the corresponding edge, and emitProgram
/// recomputes every offset.
struct BasicBlock {
  std::vector<Inst> Insts;
  std::vector<Edge> Succs;
  /// Source-program index of the first instruction (buildModule only;
  /// ~0 for blocks synthesized afterwards).
  size_t OrigIndex = ~static_cast<size_t>(0);

  /// The terminating control instruction, or nullptr for fall-through-only
  /// blocks (plain tail, marker tail, or empty).
  const Inst *terminator() const {
    return (!Insts.empty() && Insts.back().isControl()) ? &Insts.back()
                                                        : nullptr;
  }

  /// First successor of kind \p K, or NoBlock.
  BlockId succ(EdgeKind K) const {
    for (const Edge &E : Succs)
      if (E.Kind == K)
        return E.Dst;
    return NoBlock;
  }
  BlockId fallThrough() const { return succ(EdgeKind::Fall); }

  /// Replaces the first edge of kind \p K (or appends one).
  void setSucc(EdgeKind K, BlockId Dst) {
    for (Edge &E : Succs)
      if (E.Kind == K) {
        E.Dst = Dst;
        return;
      }
    Succs.push_back({Dst, K});
  }
  void dropSucc(EdgeKind K) {
    for (size_t I = 0; I != Succs.size(); ++I)
      if (Succs[I].Kind == K) {
        Succs.erase(Succs.begin() + I);
        return;
      }
  }
};

constexpr uint32_t NoFunction = 0xffffffffu;

/// Function membership metadata: an entry block (block 0 of the module,
/// plus every jal target) and the blocks reachable from it along
/// non-Call edges. Purely descriptive — emission works from the Layout —
/// but the hot/cold splitting pass groups its decisions per function.
struct Function {
  std::string Name;
  BlockId Entry = NoBlock;
  std::vector<BlockId> Blocks; ///< discovery (BFS) order, Entry first.
};

/// A code label that survives relinearization: emitProgram recomputes its
/// address from its block's final position.
struct CodeSymbol {
  std::string Name;
  BlockId Block = NoBlock;
  uint32_t Offset = 0; ///< instruction offset within the block.
};

/// The CFG form of one program. Copyable by value (the optimizer copies
/// the baseline module per pass pipeline).
class Module {
public:
  // --- Blocks ----------------------------------------------------------
  BlockId addBlock() {
    Blocks.emplace_back();
    return static_cast<BlockId>(Blocks.size() - 1);
  }
  size_t numBlocks() const { return Blocks.size(); }
  /// Splits block \p Id before instruction offset \p At: a fresh block
  /// receives the instructions [At, end) and all of \p Id's successor
  /// edges, \p Id keeps [0, At) and a Fall edge to the new block (a
  /// semantic no-op until the caller rewrites it). The new block is
  /// inserted into the layout immediately after \p Id; code symbols and
  /// index provenance at or past the split point are remapped. Incoming
  /// edges still target \p Id — that is the point: a check inserted at
  /// \p Id's tail guards everything that used to start at \p At.
  BlockId splitBlock(BlockId Id, uint32_t At);
  /// Inserts instructions before offset \p At of block \p Id, shifting
  /// the block's code-symbol offsets at or past the insertion point so
  /// they keep naming the same instruction.
  void insertInsts(BlockId Id, uint32_t At, const std::vector<Inst> &Ins);
  BasicBlock &block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  const BasicBlock &block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }

  // --- Layout ----------------------------------------------------------
  /// Linearization order. Every block appears exactly once; the first
  /// block in the layout is the execution entry (address 0).
  const std::vector<BlockId> &layout() const { return Layout; }
  /// Replaces the layout; asserts \p L is a permutation of all blocks.
  void setLayout(std::vector<BlockId> L);
  /// Appends a freshly added block to the layout end.
  void appendToLayout(BlockId Id) { Layout.push_back(Id); }

  // --- Data segment ----------------------------------------------------
  uint64_t dataBase() const { return DataBase; }
  void setDataBase(uint64_t Base) { DataBase = Base; }
  const std::vector<uint8_t> &data() const { return Data; }
  /// Reserves \p Size zeroed bytes with power-of-two alignment, returning
  /// their address (mirrors ProgramBuilder::allocData so CFG-path
  /// transforms can allocate instrumentation state).
  uint64_t allocData(size_t Size, size_t Align = 8);
  void initDataU64(uint64_t Addr, uint64_t Value);
  /// Replaces the whole data segment (used when lifting a Program).
  void setData(std::vector<uint8_t> Bytes) { Data = std::move(Bytes); }

  // --- Symbols ---------------------------------------------------------
  void nameData(const std::string &Name, uint64_t Addr) {
    DataSymbols[Name] = Addr;
  }
  const std::map<std::string, uint64_t> &dataSymbols() const {
    return DataSymbols;
  }
  void addCodeSymbol(std::string Name, BlockId Block, uint32_t Offset) {
    CodeSymbols.push_back({std::move(Name), Block, Offset});
  }
  const std::vector<CodeSymbol> &codeSymbols() const { return CodeSymbols; }

  // --- Build provenance ------------------------------------------------
  /// Block containing source-program instruction \p Index (buildModule
  /// populates this; empty for hand-assembled modules).
  const std::vector<BlockId> &indexToBlock() const { return IndexToBlock; }
  BlockId blockForIndex(size_t Index) const {
    assert(Index < IndexToBlock.size() && "index outside built program");
    return IndexToBlock[Index];
  }
  void setIndexToBlock(std::vector<BlockId> Map) {
    IndexToBlock = std::move(Map);
  }

  // --- Functions -------------------------------------------------------
  /// (Re)derives function membership: entries are the layout head plus
  /// every Call-edge target; blocks are claimed breadth-first along
  /// non-Call edges, first entry wins. Names come from offset-0 code
  /// symbols when present.
  void computeFunctions();
  const std::vector<Function> &functions() const { return Funcs; }
  /// Function index owning \p Id, or NoFunction (unreachable block).
  uint32_t functionOf(BlockId Id) const {
    return Id < FuncOf.size() ? FuncOf[Id] : NoFunction;
  }

private:
  std::vector<BasicBlock> Blocks;
  std::vector<BlockId> Layout;
  uint64_t DataBase = DefaultDataBase;
  std::vector<uint8_t> Data;
  std::map<std::string, uint64_t> DataSymbols;
  std::vector<CodeSymbol> CodeSymbols;
  std::vector<BlockId> IndexToBlock;
  std::vector<Function> Funcs;
  std::vector<uint32_t> FuncOf;
};

/// Lifts \p P into CFG form. Leaders: index 0, every PC-relative control
/// target, and every instruction after a control or marker. A control
/// target of "one past the end" materializes an empty sentinel block.
/// Publishes cfg.build.* counters.
Module buildModule(const Program &P);

struct EmitOptions {
  /// Drop jmp terminators whose target became the next block in the
  /// layout. Off by default: round-trip fidelity requires keeping a
  /// source program's explicit jumps; the optimizer turns it on.
  bool ElideJumpToNext = false;
};

struct EmitStats {
  size_t Insts = 0;            ///< total emitted instructions
  size_t InvertedBranches = 0; ///< cond branches flipped for adjacency
  size_t InsertedJumps = 0;    ///< jmps added for displaced fall-throughs
  size_t ElidedJumps = 0;      ///< jmp-to-next dropped (opt-in)
  size_t RelaxedBranches = 0;  ///< branches rewritten branch-around-jump
};

/// Linearizes \p M in layout order. Deterministic; asserts every offset
/// fits its encoding field after relaxation. Publishes cfg.emit.*
/// counters.
Program emitProgram(const Module &M, const EmitOptions &Opts = {},
                    EmitStats *Stats = nullptr);

/// The opcode computing the complementary condition (beq<->bne,
/// blt<->bge). Asserts on non-conditional opcodes.
Opcode invertedBranchOpcode(Opcode Op);

} // namespace cfg
} // namespace bor

#endif // BOR_CFG_CFG_H
