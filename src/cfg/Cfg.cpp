//===- cfg/Cfg.cpp - First-class CFG/Module IR over BOR-RISC -------------===//

#include "cfg/Cfg.h"

#include "isa/Encoding.h"
#include "telemetry/Counters.h"

#include <algorithm>

using namespace bor;
using namespace bor::cfg;

const char *cfg::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::Fall:
    return "fall";
  case EdgeKind::Taken:
    return "taken";
  case EdgeKind::BrrTaken:
    return "brr";
  case EdgeKind::Call:
    return "call";
  }
  assert(false && "unknown edge kind");
  return "?";
}

Opcode cfg::invertedBranchOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return Opcode::Bne;
  case Opcode::Bne:
    return Opcode::Beq;
  case Opcode::Blt:
    return Opcode::Bge;
  case Opcode::Bge:
    return Opcode::Blt;
  default:
    assert(false && "not an invertible conditional branch");
    return Op;
  }
}

void Module::setLayout(std::vector<BlockId> L) {
  assert(L.size() == Blocks.size() && "layout must place every block");
#ifndef NDEBUG
  std::vector<bool> Seen(Blocks.size(), false);
  for (BlockId Id : L) {
    assert(Id < Blocks.size() && "layout references unknown block");
    assert(!Seen[Id] && "layout places a block twice");
    Seen[Id] = true;
  }
#endif
  Layout = std::move(L);
}

uint64_t Module::allocData(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  size_t Offset = Data.size();
  Offset = (Offset + Align - 1) & ~(Align - 1);
  Data.resize(Offset + Size, 0);
  return DataBase + Offset;
}

void Module::initDataU64(uint64_t Addr, uint64_t Value) {
  assert(Addr >= DataBase && Addr + 8 <= DataBase + Data.size() &&
         "u64 init outside allocated data");
  size_t Offset = Addr - DataBase;
  for (unsigned I = 0; I != 8; ++I)
    Data[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

BlockId Module::splitBlock(BlockId Id, uint32_t At) {
  assert(Id < Blocks.size() && "block id out of range");
  assert(At <= Blocks[Id].Insts.size() && "split point outside block");
  size_t OldSize = Blocks[Id].Insts.size();
  BlockId Cont = addBlock(); // may reallocate Blocks; take refs after
  BasicBlock &B = Blocks[Id];
  BasicBlock &C = Blocks[Cont];
  C.Insts.assign(B.Insts.begin() + At, B.Insts.end());
  B.Insts.resize(At);
  C.Succs = std::move(B.Succs);
  B.Succs.clear();
  B.Succs.push_back({Cont, EdgeKind::Fall});
  if (B.OrigIndex != ~static_cast<size_t>(0)) {
    C.OrigIndex = B.OrigIndex + At;
    for (size_t I = C.OrigIndex;
         I != B.OrigIndex + OldSize && I < IndexToBlock.size(); ++I)
      if (IndexToBlock[I] == Id)
        IndexToBlock[I] = Cont;
  }
  auto It = std::find(Layout.begin(), Layout.end(), Id);
  assert(It != Layout.end() && "split block missing from layout");
  Layout.insert(It + 1, Cont);
  for (CodeSymbol &S : CodeSymbols)
    if (S.Block == Id && S.Offset >= At) {
      S.Block = Cont;
      S.Offset -= At;
    }
  return Cont;
}

void Module::insertInsts(BlockId Id, uint32_t At,
                         const std::vector<Inst> &Ins) {
  BasicBlock &B = block(Id);
  assert(At <= B.Insts.size() && "insertion point outside block");
  B.Insts.insert(B.Insts.begin() + At, Ins.begin(), Ins.end());
  for (CodeSymbol &S : CodeSymbols)
    if (S.Block == Id && S.Offset >= At)
      S.Offset += static_cast<uint32_t>(Ins.size());
}

void Module::computeFunctions() {
  Funcs.clear();
  FuncOf.assign(Blocks.size(), NoFunction);
  if (Layout.empty())
    return;

  // Entry order: the module entry first, then Call targets in block-id
  // order (deterministic regardless of edge-vector ordering).
  std::vector<BlockId> Entries;
  Entries.push_back(Layout.front());
  std::vector<bool> IsEntry(Blocks.size(), false);
  IsEntry[Layout.front()] = true;
  std::vector<BlockId> CallTargets;
  for (const BasicBlock &B : Blocks)
    for (const Edge &E : B.Succs)
      if (E.Kind == EdgeKind::Call && E.Dst != NoBlock)
        CallTargets.push_back(E.Dst);
  std::sort(CallTargets.begin(), CallTargets.end());
  CallTargets.erase(std::unique(CallTargets.begin(), CallTargets.end()),
                    CallTargets.end());
  for (BlockId T : CallTargets)
    if (!IsEntry[T]) {
      IsEntry[T] = true;
      Entries.push_back(T);
    }

  for (BlockId Entry : Entries) {
    if (FuncOf[Entry] != NoFunction)
      continue; // already claimed by an earlier function's body
    Function F;
    F.Entry = Entry;
    uint32_t FuncId = static_cast<uint32_t>(Funcs.size());
    // BFS along non-Call edges; first claim wins.
    std::vector<BlockId> Queue{Entry};
    FuncOf[Entry] = FuncId;
    for (size_t Head = 0; Head != Queue.size(); ++Head) {
      BlockId Id = Queue[Head];
      F.Blocks.push_back(Id);
      for (const Edge &E : Blocks[Id].Succs) {
        if (E.Kind == EdgeKind::Call || E.Dst == NoBlock)
          continue;
        // Entries start their own function even when also reachable by a
        // fall/taken edge (a callee fallen into remains its own function).
        if (IsEntry[E.Dst] && E.Dst != Entry)
          continue;
        if (FuncOf[E.Dst] == NoFunction) {
          FuncOf[E.Dst] = FuncId;
          Queue.push_back(E.Dst);
        }
      }
    }
    // Name from an offset-0 code symbol on the entry block, if any.
    for (const CodeSymbol &S : CodeSymbols)
      if (S.Block == Entry && S.Offset == 0) {
        F.Name = S.Name;
        break;
      }
    if (F.Name.empty())
      F.Name = "fn_b" + std::to_string(Entry);
    Funcs.push_back(std::move(F));
  }
}

//===----------------------------------------------------------------------===//
// buildModule
//===----------------------------------------------------------------------===//

namespace {

/// True if \p I ends a static basic block in the source linearization:
/// any control instruction, plus marker (mirroring sim/Decode's
/// DIF_EndsBlock so block ids line up with what the interpreter counts).
bool endsBlock(const Inst &I) {
  return I.isControl() || I.Op == Opcode::Marker;
}

/// Target instruction index of a PC-relative control instruction.
size_t targetIndex(size_t Index, const Inst &I) {
  int64_t T = static_cast<int64_t>(Index) + static_cast<int64_t>(I.Imm);
  assert(T >= 0 && "control target before code start");
  return static_cast<size_t>(T);
}

} // namespace

Module cfg::buildModule(const Program &P) {
  const std::vector<Inst> &Code = P.code();
  const size_t N = Code.size();

  // --- Leader analysis --------------------------------------------------
  std::vector<bool> Leader(N + 1, false);
  if (N)
    Leader[0] = true;
  bool NeedsSentinel = false;
  for (size_t I = 0; I != N; ++I) {
    const Inst &In = Code[I];
    if (endsBlock(In))
      Leader[I + 1] = true;
    if (In.isCondBranch() || In.isDirectJump() || In.isBrr()) {
      size_t T = targetIndex(I, In);
      assert(T <= N && "control target past end of code");
      Leader[T] = true;
      if (T == N)
        NeedsSentinel = true;
    }
  }

  // --- Block formation --------------------------------------------------
  Module M;
  // Data segment and symbols carry over; code symbols become
  // position-independent (block, offset) pairs.
  M.setDataBase(P.dataBase());
  M.setData(P.data());

  std::vector<BlockId> IndexToBlock(N, NoBlock);
  std::vector<size_t> BlockStart; // source index of each block's head
  for (size_t I = 0; I != N;) {
    size_t End = I + 1;
    while (End != N && !Leader[End])
      ++End;
    BlockId Id = M.addBlock();
    BasicBlock &B = M.block(Id);
    B.OrigIndex = I;
    B.Insts.assign(Code.begin() + I, Code.begin() + End);
    for (size_t J = I; J != End; ++J)
      IndexToBlock[J] = Id;
    BlockStart.push_back(I);
    M.appendToLayout(Id);
    I = End;
  }
  BlockId Sentinel = NoBlock;
  if (NeedsSentinel) {
    Sentinel = M.addBlock();
    M.block(Sentinel).OrigIndex = N;
    M.appendToLayout(Sentinel);
  }

  auto BlockAt = [&](size_t Index) -> BlockId {
    if (Index == N) {
      assert(Sentinel != NoBlock && "fall-through past end without sentinel");
      return Sentinel;
    }
    BlockId Id = IndexToBlock[Index];
    assert(Id != NoBlock);
    assert(M.block(Id).OrigIndex == Index && "edge target is not a leader");
    return Id;
  };

  // --- Edge discovery ---------------------------------------------------
  size_t NumEdges = 0;
  for (BlockId Id = 0; Id != M.numBlocks(); ++Id) {
    BasicBlock &B = M.block(Id);
    if (B.Insts.empty())
      continue; // sentinel
    size_t LastIndex = B.OrigIndex + B.Insts.size() - 1;
    const Inst &Last = B.Insts.back();
    size_t Next = LastIndex + 1;
    if (Last.isCondBranch()) {
      B.Succs.push_back({BlockAt(targetIndex(LastIndex, Last)),
                         EdgeKind::Taken});
      B.Succs.push_back({BlockAt(Next), EdgeKind::Fall});
    } else if (Last.isBrr()) {
      B.Succs.push_back({BlockAt(targetIndex(LastIndex, Last)),
                         EdgeKind::BrrTaken});
      B.Succs.push_back({BlockAt(Next), EdgeKind::Fall});
    } else if (Last.Op == Opcode::Jmp) {
      B.Succs.push_back({BlockAt(targetIndex(LastIndex, Last)),
                         EdgeKind::Taken});
    } else if (Last.Op == Opcode::Jal) {
      B.Succs.push_back({BlockAt(targetIndex(LastIndex, Last)),
                         EdgeKind::Call});
      B.Succs.push_back({BlockAt(Next), EdgeKind::Fall});
    } else if (Last.Op == Opcode::Jalr || Last.Op == Opcode::Halt) {
      // No static successors.
    } else {
      // Plain or marker tail: sequential successor, when one exists.
      if (Next < N || (Next == N && Sentinel != NoBlock))
        B.Succs.push_back({BlockAt(Next), EdgeKind::Fall});
    }
    NumEdges += B.Succs.size();
  }

  // --- Symbols ----------------------------------------------------------
  for (const auto &[Name, Addr] : P.symbols()) {
    bool IsCode = Addr < P.dataBase() && Addr % 4 == 0 && Addr / 4 < N;
    if (!IsCode) {
      M.nameData(Name, Addr);
      continue;
    }
    size_t Index = Addr / 4;
    BlockId Id = IndexToBlock[Index];
    M.addCodeSymbol(Name, Id,
                    static_cast<uint32_t>(Index - M.block(Id).OrigIndex));
  }

  M.setIndexToBlock(std::move(IndexToBlock));
  M.computeFunctions();

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Modules("cfg.build.modules");
    static const telemetry::Counter Blocks("cfg.build.blocks");
    static const telemetry::Counter Edges("cfg.build.edges");
    static const telemetry::Counter Functions("cfg.build.functions");
    Modules.add();
    Blocks.add(M.numBlocks());
    Edges.add(NumEdges);
    Functions.add(M.functions().size());
  }
  return M;
}

//===----------------------------------------------------------------------===//
// emitProgram
//===----------------------------------------------------------------------===//

namespace {

/// Per-block linearization decision. Sizes depend on addresses (for
/// relaxation) and addresses on sizes, so emission iterates to a fixed
/// point; Relaxed latches to guarantee monotone growth and termination.
struct TailPlan {
  bool Invert = false;   ///< cond branch emitted with complementary opcode
  bool Relaxed = false;  ///< cond branch as invert-around + jmp to target
  bool TrailJmp = false; ///< jmp appended for a displaced fall-through
  bool Elide = false;    ///< jmp terminator dropped (target adjacent)
  uint32_t Size = 0;     ///< emitted instructions for the whole block
};

bool fitsBranchOffset(Opcode Op, uint8_t Rs1, uint8_t Rs2, int64_t Offset) {
  if (Offset < INT32_MIN || Offset > INT32_MAX)
    return false;
  Inst Probe = Inst::branch(Op, Rs1, Rs2, static_cast<int32_t>(Offset));
  return immediateFits(Probe);
}

} // namespace

Program cfg::emitProgram(const Module &M, const EmitOptions &Opts,
                         EmitStats *StatsOut) {
  const std::vector<BlockId> &Layout = M.layout();
  assert(Layout.size() == M.numBlocks() && "layout must place every block");

  const size_t NumBlocks = M.numBlocks();
  std::vector<uint32_t> Addr(NumBlocks, 0); // instruction-index address
  std::vector<TailPlan> Plans(NumBlocks);
  std::vector<bool> LatchRelax(NumBlocks, false);
  std::vector<uint32_t> Sizes(NumBlocks);
  for (BlockId Id = 0; Id != NumBlocks; ++Id)
    Sizes[Id] = static_cast<uint32_t>(M.block(Id).Insts.size());

  auto NextInLayout = [&](size_t Pos) -> BlockId {
    return Pos + 1 < Layout.size() ? Layout[Pos + 1] : NoBlock;
  };

  // Fixed-point size/address assignment. Only conditional-branch
  // relaxation can change a plan between rounds, and it is latched, so
  // the loop terminates in at most NumBlocks + 2 rounds.
  for (size_t Round = 0;; ++Round) {
    assert(Round <= NumBlocks + 2 && "relaxation failed to converge");
    uint32_t Cursor = 0;
    for (BlockId Id : Layout) {
      Addr[Id] = Cursor;
      Cursor += Sizes[Id];
    }

    bool Changed = false;
    for (size_t Pos = 0; Pos != Layout.size(); ++Pos) {
      BlockId Id = Layout[Pos];
      const BasicBlock &B = M.block(Id);
      BlockId Next = NextInLayout(Pos);
      TailPlan Plan;
      uint32_t Body = static_cast<uint32_t>(B.Insts.size());

      const Inst *Term = B.terminator();
      if (!Term) {
        // Plain / marker / empty block: only a displaced fall-through
        // needs glue.
        BlockId F = B.fallThrough();
        if (F != NoBlock && F != Next)
          Plan.TrailJmp = true;
        Plan.Size = Body + (Plan.TrailJmp ? 1 : 0);
      } else if (Term->isCondBranch()) {
        BlockId T = B.succ(EdgeKind::Taken);
        BlockId F = B.fallThrough();
        assert(T != NoBlock && F != NoBlock &&
               "cond branch needs taken + fall successors");
        uint32_t BranchPos = Addr[Id] + Body - 1;
        auto Fits = [&](BlockId Dst) {
          return fitsBranchOffset(Term->Op, Term->Rs1, Term->Rs2,
                                  static_cast<int64_t>(Addr[Dst]) -
                                      static_cast<int64_t>(BranchPos));
        };
        if (LatchRelax[Id]) {
          Plan.Relaxed = true;
        } else if (F == Next) {
          if (!Fits(T)) {
            LatchRelax[Id] = true;
            Plan.Relaxed = true;
          }
        } else if (T == Next) {
          if (Fits(F)) {
            Plan.Invert = true;
          } else {
            LatchRelax[Id] = true;
            Plan.Relaxed = true;
          }
        } else {
          if (Fits(T)) {
            Plan.TrailJmp = true;
          } else {
            LatchRelax[Id] = true;
            Plan.Relaxed = true;
          }
        }
        if (Plan.Relaxed) {
          // inverted-branch-over + jmp T (+ jmp F unless adjacent):
          //   b!cc +2 ; jmp T ; [jmp F]
          Plan.TrailJmp = (F != Next);
          Plan.Size = Body + 1 + (Plan.TrailJmp ? 1 : 0);
        } else {
          Plan.Size = Body + (Plan.TrailJmp ? 1 : 0);
        }
      } else if (Term->isBrr()) {
        BlockId F = B.fallThrough();
        assert(B.succ(EdgeKind::BrrTaken) != NoBlock && F != NoBlock &&
               "brr needs taken + fall successors");
        Plan.TrailJmp = (F != Next);
        Plan.Size = Body + (Plan.TrailJmp ? 1 : 0);
      } else if (Term->Op == Opcode::Jmp) {
        BlockId T = B.succ(EdgeKind::Taken);
        assert(T != NoBlock && "jmp needs a taken successor");
        Plan.Elide = Opts.ElideJumpToNext && T == Next;
        Plan.Size = Body - (Plan.Elide ? 1 : 0);
      } else if (Term->Op == Opcode::Jal) {
        BlockId F = B.fallThrough();
        assert(B.succ(EdgeKind::Call) != NoBlock &&
               "jal needs a call successor");
        Plan.TrailJmp = (F != NoBlock && F != Next);
        Plan.Size = Body + (Plan.TrailJmp ? 1 : 0);
      } else {
        // jalr / halt: emitted verbatim, no glue.
        Plan.Size = Body;
      }

      Plans[Id] = Plan;
      if (Plan.Size != Sizes[Id]) {
        Sizes[Id] = Plan.Size;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // --- Materialize ------------------------------------------------------
  EmitStats Stats;
  std::vector<Inst> Code;
  {
    uint32_t Total = 0;
    for (BlockId Id : Layout)
      Total += Sizes[Id];
    Code.reserve(Total);
  }

  auto EmitControl = [&](Inst I, uint32_t TargetAddr) {
    int64_t Offset = static_cast<int64_t>(TargetAddr) -
                     static_cast<int64_t>(Code.size());
    assert(Offset >= INT32_MIN && Offset <= INT32_MAX &&
           "relaxed offset still out of int32 range");
    I.Imm = static_cast<int32_t>(Offset);
    assert(immediateFits(I) && "emitted offset exceeds encoding field");
    Code.push_back(I);
  };

  for (size_t Pos = 0; Pos != Layout.size(); ++Pos) {
    BlockId Id = Layout[Pos];
    const BasicBlock &B = M.block(Id);
    const TailPlan &Plan = Plans[Id];
    assert(Code.size() == Addr[Id] && "address assignment out of sync");

    const Inst *Term = B.terminator();
    size_t BodyCount = B.Insts.size();
    bool TermIsControl = Term != nullptr;
    if (TermIsControl)
      --BodyCount;
    for (size_t I = 0; I != BodyCount; ++I)
      Code.push_back(B.Insts[I]);

    if (!TermIsControl) {
      if (Plan.TrailJmp) {
        EmitControl(Inst::jmp(0), Addr[B.fallThrough()]);
        ++Stats.InsertedJumps;
      }
      continue;
    }

    Inst T = *Term;
    if (T.isCondBranch()) {
      BlockId Taken = B.succ(EdgeKind::Taken);
      BlockId Fall = B.fallThrough();
      if (Plan.Relaxed) {
        // b!cc over the jmp; then jmp to the taken target.
        Inst Inv = T;
        Inv.Op = invertedBranchOpcode(T.Op);
        Inv.Imm = 2;
        Code.push_back(Inv);
        EmitControl(Inst::jmp(0), Addr[Taken]);
        ++Stats.RelaxedBranches;
      } else if (Plan.Invert) {
        Inst Inv = T;
        Inv.Op = invertedBranchOpcode(T.Op);
        EmitControl(Inv, Addr[Fall]);
        ++Stats.InvertedBranches;
      } else {
        EmitControl(T, Addr[Taken]);
      }
      if (Plan.TrailJmp) {
        EmitControl(Inst::jmp(0), Addr[Fall]);
        ++Stats.InsertedJumps;
      }
    } else if (T.isBrr()) {
      EmitControl(T, Addr[B.succ(EdgeKind::BrrTaken)]);
      if (Plan.TrailJmp) {
        EmitControl(Inst::jmp(0), Addr[B.fallThrough()]);
        ++Stats.InsertedJumps;
      }
    } else if (T.Op == Opcode::Jmp) {
      if (Plan.Elide) {
        ++Stats.ElidedJumps;
      } else {
        EmitControl(T, Addr[B.succ(EdgeKind::Taken)]);
      }
    } else if (T.Op == Opcode::Jal) {
      EmitControl(T, Addr[B.succ(EdgeKind::Call)]);
      if (Plan.TrailJmp) {
        EmitControl(Inst::jmp(0), Addr[B.fallThrough()]);
        ++Stats.InsertedJumps;
      }
    } else {
      // jalr / halt carry no PC-relative field.
      Code.push_back(T);
    }
  }
  Stats.Insts = Code.size();

  Program P(std::move(Code), M.dataBase(), M.data());
  for (const auto &[Name, AddrV] : M.dataSymbols())
    P.setSymbol(Name, AddrV);
  for (const CodeSymbol &S : M.codeSymbols())
    P.setSymbol(S.Name, Program::pcForIndex(Addr[S.Block] + S.Offset));

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Programs("cfg.emit.programs");
    static const telemetry::Counter Insts("cfg.emit.insts");
    static const telemetry::Counter Inverted("cfg.emit.inverted_branches");
    static const telemetry::Counter Inserted("cfg.emit.inserted_jumps");
    static const telemetry::Counter Elided("cfg.emit.elided_jumps");
    static const telemetry::Counter Relaxed("cfg.emit.relaxed_branches");
    Programs.add();
    Insts.add(Stats.Insts);
    Inverted.add(Stats.InvertedBranches);
    Inserted.add(Stats.InsertedJumps);
    Elided.add(Stats.ElidedJumps);
    Relaxed.add(Stats.RelaxedBranches);
  }
  if (StatsOut)
    *StatsOut = Stats;
  return P;
}
