//===- sim/Interpreter.h - Functional BOR-RISC execution -----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional interpreter executes a Program against a Machine one
/// instruction at a time, producing an ExecRecord per instruction with the
/// facts a timing model needs (next PC, branch outcome, memory address).
/// It is used directly for the accuracy experiments — mirroring the paper's
/// full-speed SIGILL-based functional emulation (Section 4.1) — and as the
/// correct-path oracle of the timing-first pipeline model (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SIM_INTERPRETER_H
#define BOR_SIM_INTERPRETER_H

#include "sim/Machine.h"

#include <functional>

namespace bor {

/// Everything a timing model needs to know about one executed instruction.
struct ExecRecord {
  uint64_t Pc = 0;
  Inst I;
  uint64_t NextPc = 0;
  /// For control instructions: did it redirect (conditional taken, brr
  /// taken; always true for jumps)?
  bool Taken = false;
  /// For loads/stores: the effective address.
  uint64_t MemAddr = 0;
};

/// Aggregate execution statistics.
struct RunStats {
  uint64_t Insts = 0;
  uint64_t CondBranches = 0;
  uint64_t CondTaken = 0;
  uint64_t BrrExecuted = 0;
  uint64_t BrrTaken = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  bool Halted = false;
};

/// Functional executor. The decider resolves brr outcomes; markers invoke
/// the optional callback.
class Interpreter {
public:
  /// \p LoadImage: when set (the default) the constructor copies \p P's
  /// data segment into \p M and resets the PC, so a fresh machine is
  /// immediately runnable. Pass false to attach to a machine that is
  /// already mid-execution (checkpoint resume, sampled simulation) --
  /// the machine's PC, registers and memory are taken as-is.
  Interpreter(const Program &P, Machine &M, BrrDecider &Decider,
              bool LoadImage = true);

  /// Publishes this run's aggregate execution statistics to the telemetry
  /// counter registry (interp.*). Aggregation at destruction keeps the
  /// dispatch loop itself free of any telemetry cost.
  ~Interpreter();

  bool halted() const { return Mach.halted(); }

  /// Executes exactly one instruction. Must not be called once halted.
  ExecRecord step();

  /// Runs until halt or until \p MaxSteps instructions retire. Asserts the
  /// program halts within the budget when \p RequireHalt is set.
  RunStats run(uint64_t MaxSteps, bool RequireHalt = true);

  /// Invoked with the marker id each time a marker executes.
  void setMarkerHook(std::function<void(int32_t)> Hook) {
    MarkerHook = std::move(Hook);
  }

  const RunStats &stats() const { return Stats; }
  Machine &machine() { return Mach; }

private:
  const Program &Prog;
  Machine &Mach;
  BrrDecider &Decider;
  RunStats Stats;
  std::function<void(int32_t)> MarkerHook;
};

} // namespace bor

#endif // BOR_SIM_INTERPRETER_H
