//===- sim/Interpreter.h - Functional BOR-RISC execution -----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional interpreter executes a pre-decoded program
/// (sim/Decode.h) against a Machine, producing an ExecRecord per stepped
/// instruction with the facts a timing model needs (next PC, branch
/// outcome, memory address). It is used directly for the accuracy
/// experiments — mirroring the paper's full-speed SIGILL-based functional
/// emulation (Section 4.1) — and as the correct-path oracle of the
/// timing-first pipeline model (Section 5.1).
///
/// Two execution modes share identical architectural semantics:
///  - step(): one instruction at a time, returning an ExecRecord — the
///    oracle/warming mode.
///  - run(): block-chained threaded dispatch over the decoded image — the
///    fast-forward mode. No ExecRecords are materialized, the PC is synced
///    to the Machine only at marker hooks and chain exits, and statistics
///    are folded in at the same points. See docs/INTERPRETER.md.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SIM_INTERPRETER_H
#define BOR_SIM_INTERPRETER_H

#include "sim/Decode.h"
#include "sim/Machine.h"

#include <functional>
#include <optional>

namespace bor {

/// Everything a timing model needs to know about one executed instruction.
struct ExecRecord {
  uint64_t Pc = 0;
  Inst I;
  uint64_t NextPc = 0;
  /// For control instructions: did it redirect (conditional taken, brr
  /// taken; always true for jumps)?
  bool Taken = false;
  /// For loads/stores: the effective address.
  uint64_t MemAddr = 0;
};

/// Aggregate execution statistics.
struct RunStats {
  uint64_t Insts = 0;
  uint64_t CondBranches = 0;
  uint64_t CondTaken = 0;
  uint64_t BrrExecuted = 0;
  uint64_t BrrTaken = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  bool Halted = false;
};

/// Functional executor over a shared decoded image. The decider resolves
/// brr outcomes; markers invoke the optional callback.
class Interpreter {
public:
  /// Executes over \p DP, which must outlive the interpreter. Decode once,
  /// share the image across every engine (and thread) that runs the same
  /// program.
  ///
  /// \p LoadImage: when set (the default) the constructor copies the
  /// program's data segment into \p M and resets the PC, so a fresh
  /// machine is immediately runnable. Pass false to attach to a machine
  /// that is already mid-execution (checkpoint resume, sampled
  /// simulation) -- the machine's PC, registers and memory are taken
  /// as-is.
  Interpreter(const DecodedProgram &DP, Machine &M, BrrDecider &Decider,
              bool LoadImage = true);

  /// Convenience: decodes \p P privately and owns the image. Prefer the
  /// DecodedProgram overload wherever more than one engine executes the
  /// same program.
  Interpreter(const Program &P, Machine &M, BrrDecider &Decider,
              bool LoadImage = true);

  /// Publishes this run's aggregate execution statistics to the telemetry
  /// counter registry (interp.*, including the interp.block.* chained-
  /// dispatch counters). Aggregation at destruction keeps the dispatch
  /// loop itself free of any telemetry cost.
  ~Interpreter();

  bool halted() const { return Mach.halted(); }

  /// Executes exactly one instruction. Must not be called once halted.
  ExecRecord step();

  /// Runs until halt or until \p MaxSteps instructions retire, through the
  /// block-chained dispatch loop. Asserts the program halts within the
  /// budget when \p RequireHalt is set.
  RunStats run(uint64_t MaxSteps, bool RequireHalt = true);

  /// Invoked with the marker id each time a marker executes. During run(),
  /// stats().Insts and the machine PC are synchronized before the hook
  /// fires, so hooks observe the same state they would under step().
  void setMarkerHook(std::function<void(int32_t)> Hook) {
    MarkerHook = std::move(Hook);
  }

  /// Basic-block profiling: when \p Counts is non-null it must point at
  /// decoded().numInsts() zeroed slots, and every executed block
  /// terminator (control, halt, marker — the DIF_EndsBlock opcodes)
  /// increments the slot at its instruction index, under both step() and
  /// run(). The checkpoint library builds its per-period basic-block
  /// vectors from deltas of this buffer. Null (the default) keeps the
  /// dispatch loop free of the extra store.
  void setBlockProfile(uint64_t *Counts) { BlockCounts = Counts; }

  const RunStats &stats() const { return Stats; }
  Machine &machine() { return Mach; }
  const DecodedProgram &decoded() const { return Dec; }

private:
  void runChained(uint64_t MaxSteps);

  std::optional<DecodedProgram> OwnedImage; ///< Program-ctor form only.
  const DecodedProgram &Dec;
  const Program &Prog;
  Machine &Mach;
  BrrDecider &Decider;
  RunStats Stats;
  std::function<void(int32_t)> MarkerHook;
  uint64_t *BlockCounts = nullptr; ///< see setBlockProfile

  /// Shared terminator-count bump for both execution modes.
  void countBlock(size_t Index) {
    if (BlockCounts)
      ++BlockCounts[Index];
  }

  // Chained-dispatch accounting (published as interp.block.* at
  // destruction): chain entries, instructions retired inside chains, and
  // block terminators executed inside chains.
  uint64_t Chains = 0;
  uint64_t ChainedInsts = 0;
  uint64_t ChainedBlocks = 0;
};

} // namespace bor

#endif // BOR_SIM_INTERPRETER_H
