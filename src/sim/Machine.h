//===- sim/Machine.h - Architectural state of a BOR-RISC machine ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural state (registers, sparse paged memory, PC) plus the
/// BrrDecider interface through which an executing program's branch-on-
/// random instructions are resolved. Deciders wrap the hardware models of
/// src/core/ (LFSR unit, deterministic hardware counter) or trivial
/// always/never policies for tests — reflecting Section 3.2's point that
/// the ISA promises only asymptotic frequency, not any particular sequence,
/// so *any* decider is an architecturally valid implementation.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SIM_MACHINE_H
#define BOR_SIM_MACHINE_H

#include "core/BrrUnit.h"
#include "core/DeterministicBrr.h"
#include "isa/Program.h"

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace bor {

/// Sparse, paged simulated memory. 64-bit accesses must be 8-byte aligned
/// (all generated code allocates data with that alignment).
///
/// Pages come in two flavors: privately owned (the ordinary case) and
/// copy-on-write shares of refcounted immutable pages (attachShared). A
/// shared page costs nothing to map and nothing to read; the first write
/// to it copies the 4 KiB into a private page, so concurrent Machines
/// resumed from the same checkpoint-library snapshot (src/ckpt/) alias
/// every untouched page while writes stay strictly per-machine.
class Memory {
public:
  /// One page of simulated memory; the unit shared between a checkpoint
  /// library's PageStore and attached Machines.
  using Page = std::array<uint8_t, 4096>;
  /// Handle to an immutable shared page (the COW attach currency).
  using PageRef = std::shared_ptr<const Page>;

  uint8_t readU8(uint64_t Addr) const;
  void writeU8(uint64_t Addr, uint8_t Value);
  uint64_t readU64(uint64_t Addr) const;
  void writeU64(uint64_t Addr, uint64_t Value);

  /// Number of distinct pages touched (for tests).
  size_t numPages() const { return Pages.size(); }

  /// Page granularity of the sparse backing store.
  static constexpr uint64_t pageBytes() { return PageBytes; }

  /// Visits every allocated page in ascending address order with its base
  /// address and PageBytes of content. The deterministic order is what
  /// makes checkpoint images byte-stable across runs.
  void forEachPage(
      const std::function<void(uint64_t Base, const uint8_t *Data)> &Fn)
      const;

  /// Overwrites the page containing \p Base (which must be page-aligned)
  /// with \p Data (pageBytes() bytes). Used by checkpoint restore.
  void restorePage(uint64_t Base, const uint8_t *Data);

  /// Maps \p Base (page-aligned) to the immutable page \p P, read-only and
  /// copy-on-first-write. Replaces whatever was mapped there. The share
  /// keeps \p P alive, so the providing store may be destroyed first.
  void attachShared(uint64_t Base, PageRef P);

  /// Copy-on-write accounting. Cumulative over the Memory's lifetime —
  /// reset() drops the pages but keeps the counts, so a sampled run that
  /// re-attaches checkpoints every period still reports its totals.
  struct CowCounts {
    uint64_t Attached = 0; ///< pages mapped via attachShared
    uint64_t Copied = 0;   ///< shared pages privatized by a write
  };
  const CowCounts &cowCounts() const { return Cow; }

  /// Drops every page — owned and shared alike — returning memory to the
  /// all-zero state. Restoring a checkpoint over a dirty machine relies on
  /// this to shed stale private copies.
  void reset() { Pages.clear(); }

private:
  static constexpr uint64_t PageBytes = 4096;
  static_assert(sizeof(Page) == PageBytes, "page type matches granularity");

  /// One page mapping. Read is always valid once populated (points into
  /// Owned or Shared); Write is null while the page is COW-shared, which
  /// is what routes the first store through makeWritable.
  struct Slot {
    const Page *Read = nullptr;
    Page *Write = nullptr;
    std::unique_ptr<Page> Owned;
    PageRef Shared;
  };

  Page &pageFor(uint64_t Addr);
  Page &makeWritable(Slot &S);
  const Page *pageForRead(uint64_t Addr) const;

  std::unordered_map<uint64_t, Slot> Pages;
  CowCounts Cow;
};

/// Resolves branch-on-random outcomes for an executing program.
class BrrDecider {
public:
  virtual ~BrrDecider();
  /// Returns true if this dynamic brr instance is taken.
  virtual bool decide(FreqCode Freq) = 0;
  /// Implements the rdlfsr instruction (Section 3.4's software-readable
  /// LFSR): returns the generator's current state and advances it.
  /// Implementations without an LFSR return 0.
  virtual uint64_t readAndStep() { return 0; }

  /// Checkpoint support. A decider is architectural state: resuming a
  /// snapshotted execution must reproduce the exact outcome sequence the
  /// uninterrupted run would have produced. kind() names the
  /// implementation (a resume must re-create the same kind);
  /// checkpointWords() returns the state as opaque words, and
  /// restoreCheckpointWords() installs words captured from a decider of
  /// the same kind. Stateless deciders need none of it.
  virtual const char *checkpointKind() const { return "stateless"; }
  virtual std::vector<uint64_t> checkpointWords() const { return {}; }
  virtual void restoreCheckpointWords(const std::vector<uint64_t> &Words) {
    (void)Words;
  }
};

/// The proposed hardware: an LFSR-based BrrUnit (Section 3.3).
class BrrUnitDecider : public BrrDecider {
public:
  explicit BrrUnitDecider(const BrrUnitConfig &Config = BrrUnitConfig())
      : Unit(Config) {}
  /// Publishes the unit's lifetime evaluation count to the telemetry
  /// counter registry (brr_unit.evaluations). Defined in Machine.cpp.
  ~BrrUnitDecider() override;
  bool decide(FreqCode Freq) override { return Unit.evaluate(Freq); }
  uint64_t readAndStep() override {
    uint64_t State = Unit.lfsr().state();
    Unit.lfsr().step();
    return State;
  }
  const char *checkpointKind() const override { return "lfsr"; }
  std::vector<uint64_t> checkpointWords() const override {
    return {Unit.lfsr().state(), Unit.evaluationCount()};
  }
  void restoreCheckpointWords(const std::vector<uint64_t> &Words) override {
    assert(Words.size() == 2 && "malformed lfsr checkpoint");
    Unit.lfsr().seed(Words[0]);
    Unit.restoreEvaluationCount(Words[1]);
  }
  const BrrUnit &unit() const { return Unit; }

private:
  BrrUnit Unit;
};

/// Deterministic fixed-interval implementation (Section 4.1's "hardware
/// counter").
class HwCounterDecider : public BrrDecider {
public:
  explicit HwCounterDecider(uint64_t Phase = 0) : Unit(Phase) {}
  bool decide(FreqCode Freq) override { return Unit.evaluate(Freq); }
  const char *checkpointKind() const override { return "counter"; }
  std::vector<uint64_t> checkpointWords() const override {
    return {Unit.evaluationCount()};
  }
  void restoreCheckpointWords(const std::vector<uint64_t> &Words) override {
    assert(Words.size() == 1 && "malformed counter checkpoint");
    Unit = HwCounterUnit(Words[0]);
  }

private:
  HwCounterUnit Unit;
};

/// Never-taken (e.g. to measure framework-only code paths in tests).
class NeverTakenDecider : public BrrDecider {
public:
  bool decide(FreqCode) override { return false; }
};

/// Always-taken (for exercising instrumentation paths deterministically).
class AlwaysTakenDecider : public BrrDecider {
public:
  bool decide(FreqCode) override { return true; }
};

/// Architectural machine state.
class Machine {
public:
  Machine();

  /// Resets memory (dropping any stale pages from a previous program or
  /// checkpoint), copies \p P's data segment in, and resets PC to 0.
  void loadProgram(const Program &P);

  uint64_t readReg(unsigned R) const {
    assert(R < 32 && "register index out of range");
    return Regs[R];
  }
  void writeReg(unsigned R, uint64_t Value) {
    assert(R < 32 && "register index out of range");
    if (R != RegZero)
      Regs[R] = Value;
  }

  /// Raw register file for the interpreter's threaded dispatch loop.
  /// Writers must preserve the r0-is-zero invariant (the dispatch loop
  /// writes the destination unconditionally, then re-clears Regs[RegZero]).
  uint64_t *rawRegs() { return Regs.data(); }

  uint64_t pc() const { return Pc; }
  void setPc(uint64_t NewPc) { Pc = NewPc; }

  bool halted() const { return Halted; }
  void setHalted(bool H = true) { Halted = H; }

  Memory &memory() { return Mem; }
  const Memory &memory() const { return Mem; }

private:
  std::array<uint64_t, 32> Regs;
  uint64_t Pc = 0;
  bool Halted = false;
  Memory Mem;
};

} // namespace bor

#endif // BOR_SIM_MACHINE_H
