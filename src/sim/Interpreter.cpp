//===- sim/Interpreter.cpp - Functional BOR-RISC execution ---------------===//

#include "sim/Interpreter.h"

#include "telemetry/Counters.h"

using namespace bor;

Interpreter::Interpreter(const Program &P, Machine &M, BrrDecider &Decider,
                         bool LoadImage)
    : Prog(P), Mach(M), Decider(Decider) {
  // Establish the program image (data segment, PC) so a fresh machine is
  // immediately runnable. Attach mode (LoadImage == false) leaves the
  // machine exactly as handed in, mid-execution state included.
  if (LoadImage)
    Mach.loadProgram(P);
}

Interpreter::~Interpreter() {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter Runs("interp.runs");
  static const telemetry::Counter Insts("interp.insts");
  static const telemetry::Counter CondBranches("interp.cond_branches");
  static const telemetry::Counter CondTaken("interp.cond_taken");
  static const telemetry::Counter BrrExecuted("interp.brr.executed");
  static const telemetry::Counter BrrTaken("interp.brr.taken");
  static const telemetry::Counter Loads("interp.loads");
  static const telemetry::Counter Stores("interp.stores");
  static const telemetry::HistogramCounter RunInsts("interp.run.insts");
  Runs.add();
  Insts.add(Stats.Insts);
  CondBranches.add(Stats.CondBranches);
  CondTaken.add(Stats.CondTaken);
  BrrExecuted.add(Stats.BrrExecuted);
  BrrTaken.add(Stats.BrrTaken);
  Loads.add(Stats.Loads);
  Stores.add(Stats.Stores);
  RunInsts.observe(Stats.Insts);
}

ExecRecord Interpreter::step() {
  assert(!Mach.halted() && "stepping a halted machine");

  ExecRecord R;
  R.Pc = Mach.pc();
  size_t Index = Prog.indexForPc(R.Pc);
  const Inst &I = Prog.at(Index);
  R.I = I;
  R.NextPc = R.Pc + 4;

  auto Reg = [this](unsigned Idx) { return Mach.readReg(Idx); };
  auto BranchTarget = [&] {
    return R.Pc + 4 * static_cast<int64_t>(I.Imm);
  };

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    Mach.setHalted();
    R.NextPc = R.Pc;
    break;

  case Opcode::Add:
    Mach.writeReg(I.Rd, Reg(I.Rs1) + Reg(I.Rs2));
    break;
  case Opcode::Sub:
    Mach.writeReg(I.Rd, Reg(I.Rs1) - Reg(I.Rs2));
    break;
  case Opcode::And:
    Mach.writeReg(I.Rd, Reg(I.Rs1) & Reg(I.Rs2));
    break;
  case Opcode::Or:
    Mach.writeReg(I.Rd, Reg(I.Rs1) | Reg(I.Rs2));
    break;
  case Opcode::Xor:
    Mach.writeReg(I.Rd, Reg(I.Rs1) ^ Reg(I.Rs2));
    break;
  case Opcode::Sll:
    Mach.writeReg(I.Rd, Reg(I.Rs1) << (Reg(I.Rs2) & 63));
    break;
  case Opcode::Srl:
    Mach.writeReg(I.Rd, Reg(I.Rs1) >> (Reg(I.Rs2) & 63));
    break;
  case Opcode::Mul:
    Mach.writeReg(I.Rd, Reg(I.Rs1) * Reg(I.Rs2));
    break;
  case Opcode::Slt:
    Mach.writeReg(I.Rd, static_cast<int64_t>(Reg(I.Rs1)) <
                                static_cast<int64_t>(Reg(I.Rs2))
                            ? 1
                            : 0);
    break;
  case Opcode::Sltu:
    Mach.writeReg(I.Rd, Reg(I.Rs1) < Reg(I.Rs2) ? 1 : 0);
    break;

  case Opcode::Addi:
    Mach.writeReg(I.Rd, Reg(I.Rs1) + static_cast<int64_t>(I.Imm));
    break;
  case Opcode::Andi:
    Mach.writeReg(I.Rd, Reg(I.Rs1) & static_cast<uint64_t>(
                                         static_cast<int64_t>(I.Imm)));
    break;
  case Opcode::Ori:
    Mach.writeReg(I.Rd, Reg(I.Rs1) | static_cast<uint64_t>(
                                         static_cast<int64_t>(I.Imm)));
    break;
  case Opcode::Xori:
    Mach.writeReg(I.Rd, Reg(I.Rs1) ^ static_cast<uint64_t>(
                                         static_cast<int64_t>(I.Imm)));
    break;
  case Opcode::Slli:
    Mach.writeReg(I.Rd, Reg(I.Rs1) << (I.Imm & 63));
    break;
  case Opcode::Srli:
    Mach.writeReg(I.Rd, Reg(I.Rs1) >> (I.Imm & 63));
    break;
  case Opcode::Slti:
    Mach.writeReg(I.Rd, static_cast<int64_t>(Reg(I.Rs1)) <
                                static_cast<int64_t>(I.Imm)
                            ? 1
                            : 0);
    break;

  case Opcode::Ld:
    R.MemAddr = Reg(I.Rs1) + static_cast<int64_t>(I.Imm);
    Mach.writeReg(I.Rd, Mach.memory().readU64(R.MemAddr));
    ++Stats.Loads;
    break;
  case Opcode::Ldb:
    R.MemAddr = Reg(I.Rs1) + static_cast<int64_t>(I.Imm);
    Mach.writeReg(I.Rd, Mach.memory().readU8(R.MemAddr));
    ++Stats.Loads;
    break;
  case Opcode::St:
    R.MemAddr = Reg(I.Rs1) + static_cast<int64_t>(I.Imm);
    Mach.memory().writeU64(R.MemAddr, Reg(I.Rs2));
    ++Stats.Stores;
    break;
  case Opcode::Stb:
    R.MemAddr = Reg(I.Rs1) + static_cast<int64_t>(I.Imm);
    Mach.memory().writeU8(R.MemAddr, static_cast<uint8_t>(Reg(I.Rs2)));
    ++Stats.Stores;
    break;

  case Opcode::Beq:
    R.Taken = Reg(I.Rs1) == Reg(I.Rs2);
    goto condBranch;
  case Opcode::Bne:
    R.Taken = Reg(I.Rs1) != Reg(I.Rs2);
    goto condBranch;
  case Opcode::Blt:
    R.Taken = static_cast<int64_t>(Reg(I.Rs1)) <
              static_cast<int64_t>(Reg(I.Rs2));
    goto condBranch;
  case Opcode::Bge:
    R.Taken = static_cast<int64_t>(Reg(I.Rs1)) >=
              static_cast<int64_t>(Reg(I.Rs2));
  condBranch:
    ++Stats.CondBranches;
    if (R.Taken) {
      ++Stats.CondTaken;
      R.NextPc = BranchTarget();
    }
    break;

  case Opcode::Jmp:
    R.Taken = true;
    R.NextPc = BranchTarget();
    break;
  case Opcode::Jal:
    Mach.writeReg(I.Rd, R.Pc + 4);
    R.Taken = true;
    R.NextPc = BranchTarget();
    break;
  case Opcode::Jalr: {
    uint64_t Target = Reg(I.Rs1);
    Mach.writeReg(I.Rd, R.Pc + 4);
    R.Taken = true;
    R.NextPc = Target;
    break;
  }

  case Opcode::Brr:
    ++Stats.BrrExecuted;
    R.Taken = Decider.decide(FreqCode(I.Freq));
    if (R.Taken) {
      ++Stats.BrrTaken;
      R.NextPc = BranchTarget();
    }
    break;

  case Opcode::Marker:
    if (MarkerHook)
      MarkerHook(I.Imm);
    break;

  case Opcode::RdLfsr:
    Mach.writeReg(I.Rd, Decider.readAndStep());
    break;
  }

  Mach.setPc(R.NextPc);
  ++Stats.Insts;
  return R;
}

RunStats Interpreter::run(uint64_t MaxSteps, bool RequireHalt) {
  for (uint64_t N = 0; N != MaxSteps && !Mach.halted(); ++N)
    step();
  assert((!RequireHalt || Mach.halted()) &&
         "program did not halt within the step budget");
  (void)RequireHalt;
  Stats.Halted = Mach.halted();
  return Stats;
}
