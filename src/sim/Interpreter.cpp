//===- sim/Interpreter.cpp - Functional BOR-RISC execution ---------------===//
//
// step() is the record-producing oracle path; run() is the block-chained
// threaded-dispatch path used for functional fast-forward. Both execute
// the shared pre-decoded image and are architecturally identical: same
// machine state, same statistics, same BrrDecider call sequence, same
// marker-hook observations (the differential test in
// tests/test_decode.cpp holds them to that).
//
//===----------------------------------------------------------------------===//

#include "sim/Interpreter.h"

#include "telemetry/Counters.h"

using namespace bor;

// Threaded dispatch uses the GNU address-of-label extension; other
// compilers fall back to an equivalent switch in the same chain structure.
#if defined(__GNUC__) || defined(__clang__)
#define BOR_THREADED_DISPATCH 1
#else
#define BOR_THREADED_DISPATCH 0
#endif

Interpreter::Interpreter(const DecodedProgram &DP, Machine &M,
                         BrrDecider &Decider, bool LoadImage)
    : Dec(DP), Prog(DP.program()), Mach(M), Decider(Decider) {
  // Establish the program image (data segment, PC) so a fresh machine is
  // immediately runnable. Attach mode (LoadImage == false) leaves the
  // machine exactly as handed in, mid-execution state included.
  if (LoadImage)
    Mach.loadProgram(Prog);
}

Interpreter::Interpreter(const Program &P, Machine &M, BrrDecider &Decider,
                         bool LoadImage)
    : OwnedImage(std::in_place, P), Dec(*OwnedImage), Prog(P), Mach(M),
      Decider(Decider) {
  if (LoadImage)
    Mach.loadProgram(Prog);
}

Interpreter::~Interpreter() {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter Runs("interp.runs");
  static const telemetry::Counter Insts("interp.insts");
  static const telemetry::Counter CondBranches("interp.cond_branches");
  static const telemetry::Counter CondTaken("interp.cond_taken");
  static const telemetry::Counter BrrExecuted("interp.brr.executed");
  static const telemetry::Counter BrrTaken("interp.brr.taken");
  static const telemetry::Counter Loads("interp.loads");
  static const telemetry::Counter Stores("interp.stores");
  static const telemetry::HistogramCounter RunInsts("interp.run.insts");
  static const telemetry::Counter BlockChains("interp.block.chains");
  static const telemetry::Counter BlockInsts("interp.block.insts");
  static const telemetry::Counter BlockBlocks("interp.block.blocks");
  Runs.add();
  Insts.add(Stats.Insts);
  CondBranches.add(Stats.CondBranches);
  CondTaken.add(Stats.CondTaken);
  BrrExecuted.add(Stats.BrrExecuted);
  BrrTaken.add(Stats.BrrTaken);
  Loads.add(Stats.Loads);
  Stores.add(Stats.Stores);
  RunInsts.observe(Stats.Insts);
  BlockChains.add(Chains);
  BlockInsts.add(ChainedInsts);
  BlockBlocks.add(ChainedBlocks);
}

ExecRecord Interpreter::step() {
  assert(!Mach.halted() && "stepping a halted machine");

  ExecRecord R;
  R.Pc = Mach.pc();
  size_t Index = Prog.indexForPc(R.Pc);
  const DecodedInst &D = Dec.at(Index);
  R.I = Prog.at(Index);
  R.NextPc = R.Pc + 4;

  auto Reg = [this](unsigned Idx) { return Mach.readReg(Idx); };

  switch (D.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Halt:
    Mach.setHalted();
    R.NextPc = R.Pc;
    break;

  case Opcode::Add:
    Mach.writeReg(D.Rd, Reg(D.Rs1) + Reg(D.Rs2));
    break;
  case Opcode::Sub:
    Mach.writeReg(D.Rd, Reg(D.Rs1) - Reg(D.Rs2));
    break;
  case Opcode::And:
    Mach.writeReg(D.Rd, Reg(D.Rs1) & Reg(D.Rs2));
    break;
  case Opcode::Or:
    Mach.writeReg(D.Rd, Reg(D.Rs1) | Reg(D.Rs2));
    break;
  case Opcode::Xor:
    Mach.writeReg(D.Rd, Reg(D.Rs1) ^ Reg(D.Rs2));
    break;
  case Opcode::Sll:
    Mach.writeReg(D.Rd, Reg(D.Rs1) << (Reg(D.Rs2) & 63));
    break;
  case Opcode::Srl:
    Mach.writeReg(D.Rd, Reg(D.Rs1) >> (Reg(D.Rs2) & 63));
    break;
  case Opcode::Mul:
    Mach.writeReg(D.Rd, Reg(D.Rs1) * Reg(D.Rs2));
    break;
  case Opcode::Slt:
    Mach.writeReg(D.Rd, static_cast<int64_t>(Reg(D.Rs1)) <
                                static_cast<int64_t>(Reg(D.Rs2))
                            ? 1
                            : 0);
    break;
  case Opcode::Sltu:
    Mach.writeReg(D.Rd, Reg(D.Rs1) < Reg(D.Rs2) ? 1 : 0);
    break;

  case Opcode::Addi:
    Mach.writeReg(D.Rd, Reg(D.Rs1) + static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::Andi:
    Mach.writeReg(D.Rd, Reg(D.Rs1) & static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::Ori:
    Mach.writeReg(D.Rd, Reg(D.Rs1) | static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::Xori:
    Mach.writeReg(D.Rd, Reg(D.Rs1) ^ static_cast<uint64_t>(D.Imm));
    break;
  case Opcode::Slli:
    Mach.writeReg(D.Rd, Reg(D.Rs1) << D.Imm);
    break;
  case Opcode::Srli:
    Mach.writeReg(D.Rd, Reg(D.Rs1) >> D.Imm);
    break;
  case Opcode::Slti:
    Mach.writeReg(D.Rd,
                  static_cast<int64_t>(Reg(D.Rs1)) < D.Imm ? 1 : 0);
    break;

  case Opcode::Ld:
    R.MemAddr = Reg(D.Rs1) + static_cast<uint64_t>(D.Imm);
    Mach.writeReg(D.Rd, Mach.memory().readU64(R.MemAddr));
    ++Stats.Loads;
    break;
  case Opcode::Ldb:
    R.MemAddr = Reg(D.Rs1) + static_cast<uint64_t>(D.Imm);
    Mach.writeReg(D.Rd, Mach.memory().readU8(R.MemAddr));
    ++Stats.Loads;
    break;
  case Opcode::St:
    R.MemAddr = Reg(D.Rs1) + static_cast<uint64_t>(D.Imm);
    Mach.memory().writeU64(R.MemAddr, Reg(D.Rs2));
    ++Stats.Stores;
    break;
  case Opcode::Stb:
    R.MemAddr = Reg(D.Rs1) + static_cast<uint64_t>(D.Imm);
    Mach.memory().writeU8(R.MemAddr, static_cast<uint8_t>(Reg(D.Rs2)));
    ++Stats.Stores;
    break;

  case Opcode::Beq:
    R.Taken = Reg(D.Rs1) == Reg(D.Rs2);
    goto condBranch;
  case Opcode::Bne:
    R.Taken = Reg(D.Rs1) != Reg(D.Rs2);
    goto condBranch;
  case Opcode::Blt:
    R.Taken = static_cast<int64_t>(Reg(D.Rs1)) <
              static_cast<int64_t>(Reg(D.Rs2));
    goto condBranch;
  case Opcode::Bge:
    R.Taken = static_cast<int64_t>(Reg(D.Rs1)) >=
              static_cast<int64_t>(Reg(D.Rs2));
  condBranch:
    ++Stats.CondBranches;
    if (R.Taken) {
      ++Stats.CondTaken;
      R.NextPc = D.Target;
    }
    break;

  case Opcode::Jmp:
    R.Taken = true;
    R.NextPc = D.Target;
    break;
  case Opcode::Jal:
    Mach.writeReg(D.Rd, R.Pc + 4);
    R.Taken = true;
    R.NextPc = D.Target;
    break;
  case Opcode::Jalr: {
    uint64_t Target = Reg(D.Rs1);
    Mach.writeReg(D.Rd, R.Pc + 4);
    R.Taken = true;
    R.NextPc = Target;
    break;
  }

  case Opcode::Brr:
    ++Stats.BrrExecuted;
    R.Taken = Decider.decide(FreqCode(D.Freq));
    if (R.Taken) {
      ++Stats.BrrTaken;
      R.NextPc = D.Target;
    }
    break;

  case Opcode::Marker:
    if (MarkerHook)
      MarkerHook(static_cast<int32_t>(D.Imm));
    break;

  case Opcode::RdLfsr:
    Mach.writeReg(D.Rd, Decider.readAndStep());
    break;
  }

  if (D.endsBlock())
    countBlock(Index);
  Mach.setPc(R.NextPc);
  ++Stats.Insts;
  return R;
}

/// Block-chained dispatch: decoded instructions execute back to back —
/// including across taken control flow whose target stays inside the
/// image — without touching the Machine's PC. The PC is synchronized
/// only at marker hooks and chain exits (halt, budget, an indirect
/// target that cannot be chained, or the PC leaving the image). Hot
/// statistics accumulate in locals and fold into Stats at the same
/// points, so the per-instruction work is the handler body plus one
/// indirect jump.
void Interpreter::runChained(uint64_t MaxSteps) {
  static_assert(NumOpcodes == 33, "dispatch table must cover every opcode");

  const DecodedInst *const IBase = Dec.insts();
  const size_t NumI = Dec.numInsts();
  uint64_t *const Regs = Mach.rawRegs();
  const uint64_t EntryInsts = Stats.Insts;

  uint64_t Executed = 0;
  uint64_t NCond = 0, NCondTaken = 0;
  uint64_t NBrr = 0, NBrrTaken = 0;
  uint64_t NLoads = 0, NStores = 0;
  uint64_t NBlocks = 0;

  size_t Idx = 0;
  const DecodedInst *D = nullptr;

  while (!Mach.halted() && Executed != MaxSteps) {
    // Asserts alignment and range exactly as step() would on a wild PC.
    Idx = Prog.indexForPc(Mach.pc());
    ++Chains;

#if BOR_THREADED_DISPATCH
    static const void *const Tbl[NumOpcodes] = {
        &&H_Nop,  &&H_Halt, &&H_Add,  &&H_Sub,  &&H_And,    &&H_Or,
        &&H_Xor,  &&H_Sll,  &&H_Srl,  &&H_Mul,  &&H_Slt,    &&H_Sltu,
        &&H_Addi, &&H_Andi, &&H_Ori,  &&H_Xori, &&H_Slli,   &&H_Srli,
        &&H_Slti, &&H_Ld,   &&H_Ldb,  &&H_St,   &&H_Stb,    &&H_Beq,
        &&H_Bne,  &&H_Blt,  &&H_Bge,  &&H_Jmp,  &&H_Jal,    &&H_Jalr,
        &&H_Brr,  &&H_Marker, &&H_RdLfsr};

#define BOR_CASE(name) H_##name:
#define BOR_NEXT()                                                           \
  do {                                                                       \
    if (Executed == MaxSteps)                                                \
      goto budgetExit;                                                       \
    if (Idx >= NumI)                                                         \
      goto rangeExit;                                                        \
    D = &IBase[Idx];                                                         \
    goto *Tbl[static_cast<unsigned>(D->Op)];                                 \
  } while (0)

    BOR_NEXT(); // enter the chain
#else
    for (;;) {
      if (Executed == MaxSteps)
        goto budgetExit;
      if (Idx >= NumI)
        goto rangeExit;
      D = &IBase[Idx];
      switch (D->Op) {

#define BOR_CASE(name) case Opcode::name:
#define BOR_NEXT() break
#endif

    BOR_CASE(Nop) {
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Halt) {
      countBlock(Idx);
      Mach.setHalted();
      Mach.setPc(Program::pcForIndex(Idx));
      ++Executed;
      ++NBlocks;
      goto chainExit;
    }
    BOR_CASE(Add) {
      Regs[D->Rd] = Regs[D->Rs1] + Regs[D->Rs2];
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Sub) {
      Regs[D->Rd] = Regs[D->Rs1] - Regs[D->Rs2];
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(And) {
      Regs[D->Rd] = Regs[D->Rs1] & Regs[D->Rs2];
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Or) {
      Regs[D->Rd] = Regs[D->Rs1] | Regs[D->Rs2];
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Xor) {
      Regs[D->Rd] = Regs[D->Rs1] ^ Regs[D->Rs2];
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Sll) {
      Regs[D->Rd] = Regs[D->Rs1] << (Regs[D->Rs2] & 63);
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Srl) {
      Regs[D->Rd] = Regs[D->Rs1] >> (Regs[D->Rs2] & 63);
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Mul) {
      Regs[D->Rd] = Regs[D->Rs1] * Regs[D->Rs2];
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Slt) {
      Regs[D->Rd] = static_cast<int64_t>(Regs[D->Rs1]) <
                            static_cast<int64_t>(Regs[D->Rs2])
                        ? 1
                        : 0;
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Sltu) {
      Regs[D->Rd] = Regs[D->Rs1] < Regs[D->Rs2] ? 1 : 0;
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Addi) {
      Regs[D->Rd] = Regs[D->Rs1] + static_cast<uint64_t>(D->Imm);
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Andi) {
      Regs[D->Rd] = Regs[D->Rs1] & static_cast<uint64_t>(D->Imm);
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Ori) {
      Regs[D->Rd] = Regs[D->Rs1] | static_cast<uint64_t>(D->Imm);
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Xori) {
      Regs[D->Rd] = Regs[D->Rs1] ^ static_cast<uint64_t>(D->Imm);
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Slli) {
      Regs[D->Rd] = Regs[D->Rs1] << D->Imm;
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Srli) {
      Regs[D->Rd] = Regs[D->Rs1] >> D->Imm;
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Slti) {
      Regs[D->Rd] =
          static_cast<int64_t>(Regs[D->Rs1]) < D->Imm ? 1 : 0;
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Ld) {
      uint64_t Addr = Regs[D->Rs1] + static_cast<uint64_t>(D->Imm);
      Regs[D->Rd] = Mach.memory().readU64(Addr);
      Regs[RegZero] = 0;
      ++NLoads;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Ldb) {
      uint64_t Addr = Regs[D->Rs1] + static_cast<uint64_t>(D->Imm);
      Regs[D->Rd] = Mach.memory().readU8(Addr);
      Regs[RegZero] = 0;
      ++NLoads;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(St) {
      uint64_t Addr = Regs[D->Rs1] + static_cast<uint64_t>(D->Imm);
      Mach.memory().writeU64(Addr, Regs[D->Rs2]);
      ++NStores;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Stb) {
      uint64_t Addr = Regs[D->Rs1] + static_cast<uint64_t>(D->Imm);
      Mach.memory().writeU8(Addr, static_cast<uint8_t>(Regs[D->Rs2]));
      ++NStores;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(Beq) {
      countBlock(Idx);
      bool Taken = Regs[D->Rs1] == Regs[D->Rs2];
      ++NCond;
      ++NBlocks;
      ++Executed;
      if (Taken) {
        ++NCondTaken;
        Idx = static_cast<size_t>(D->Target / 4);
      } else {
        ++Idx;
      }
      BOR_NEXT();
    }
    BOR_CASE(Bne) {
      countBlock(Idx);
      bool Taken = Regs[D->Rs1] != Regs[D->Rs2];
      ++NCond;
      ++NBlocks;
      ++Executed;
      if (Taken) {
        ++NCondTaken;
        Idx = static_cast<size_t>(D->Target / 4);
      } else {
        ++Idx;
      }
      BOR_NEXT();
    }
    BOR_CASE(Blt) {
      countBlock(Idx);
      bool Taken = static_cast<int64_t>(Regs[D->Rs1]) <
                   static_cast<int64_t>(Regs[D->Rs2]);
      ++NCond;
      ++NBlocks;
      ++Executed;
      if (Taken) {
        ++NCondTaken;
        Idx = static_cast<size_t>(D->Target / 4);
      } else {
        ++Idx;
      }
      BOR_NEXT();
    }
    BOR_CASE(Bge) {
      countBlock(Idx);
      bool Taken = static_cast<int64_t>(Regs[D->Rs1]) >=
                   static_cast<int64_t>(Regs[D->Rs2]);
      ++NCond;
      ++NBlocks;
      ++Executed;
      if (Taken) {
        ++NCondTaken;
        Idx = static_cast<size_t>(D->Target / 4);
      } else {
        ++Idx;
      }
      BOR_NEXT();
    }
    BOR_CASE(Jmp) {
      countBlock(Idx);
      ++NBlocks;
      ++Executed;
      Idx = static_cast<size_t>(D->Target / 4);
      BOR_NEXT();
    }
    BOR_CASE(Jal) {
      countBlock(Idx);
      Regs[D->Rd] = Program::pcForIndex(Idx) + 4;
      Regs[RegZero] = 0;
      ++NBlocks;
      ++Executed;
      Idx = static_cast<size_t>(D->Target / 4);
      BOR_NEXT();
    }
    BOR_CASE(Jalr) {
      countBlock(Idx);
      uint64_t Target = Regs[D->Rs1];
      Regs[D->Rd] = Program::pcForIndex(Idx) + 4;
      Regs[RegZero] = 0;
      ++NBlocks;
      ++Executed;
      if (Target % 4 == 0 && Target / 4 < NumI) {
        Idx = static_cast<size_t>(Target / 4);
        BOR_NEXT();
      }
      // Unaligned or out-of-image target: publish it and leave the chain;
      // the outer indexForPc raises the same assert a step() would.
      Mach.setPc(Target);
      goto chainExit;
    }
    BOR_CASE(Brr) {
      countBlock(Idx);
      ++NBrr;
      bool Taken = Decider.decide(FreqCode(D->Freq));
      ++NBlocks;
      ++Executed;
      if (Taken) {
        ++NBrrTaken;
        Idx = static_cast<size_t>(D->Target / 4);
      } else {
        ++Idx;
      }
      BOR_NEXT();
    }
    BOR_CASE(Marker) {
      countBlock(Idx);
      ++NBlocks;
      if (MarkerHook) {
        // Hooks observe the same state step() would publish: the marker's
        // own PC and the pre-marker instruction count.
        Mach.setPc(Program::pcForIndex(Idx));
        Stats.Insts = EntryInsts + Executed;
        MarkerHook(static_cast<int32_t>(D->Imm));
      }
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }
    BOR_CASE(RdLfsr) {
      Regs[D->Rd] = Decider.readAndStep();
      Regs[RegZero] = 0;
      ++Executed;
      ++Idx;
      BOR_NEXT();
    }

#if !BOR_THREADED_DISPATCH
      }
    }
#endif
#undef BOR_CASE
#undef BOR_NEXT

  budgetExit:
    Mach.setPc(Program::pcForIndex(Idx));
    break;

  rangeExit:
    // The PC left the decoded image; restore it so the outer indexForPc
    // raises "PC outside code segment" exactly as a step() would.
    Mach.setPc(Program::pcForIndex(Idx));
    continue;

  chainExit:
    // Machine PC already current (halt, or an unchainable indirect).
    continue;
  }

  Stats.Insts = EntryInsts + Executed;
  Stats.CondBranches += NCond;
  Stats.CondTaken += NCondTaken;
  Stats.BrrExecuted += NBrr;
  Stats.BrrTaken += NBrrTaken;
  Stats.Loads += NLoads;
  Stats.Stores += NStores;
  ChainedInsts += Executed;
  ChainedBlocks += NBlocks;
}

RunStats Interpreter::run(uint64_t MaxSteps, bool RequireHalt) {
  runChained(MaxSteps);
  assert((!RequireHalt || Mach.halted()) &&
         "program did not halt within the step budget");
  (void)RequireHalt;
  Stats.Halted = Mach.halted();
  return Stats;
}
