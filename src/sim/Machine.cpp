//===- sim/Machine.cpp - Architectural state of a BOR-RISC machine -------===//

#include "sim/Machine.h"

#include "telemetry/Counters.h"

#include <algorithm>
#include <cstring>

using namespace bor;

BrrDecider::~BrrDecider() = default;

BrrUnitDecider::~BrrUnitDecider() {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter Evals("brr_unit.evaluations");
  Evals.add(Unit.evaluationCount());
}

Memory::Page &Memory::pageFor(uint64_t Addr) {
  Slot &S = Pages[Addr / PageBytes];
  if (S.Write)
    return *S.Write;
  return makeWritable(S);
}

/// Slow path of the store pipeline: privatizes a COW-shared page (copying
/// its bytes and dropping the share) or allocates a fresh zero page.
Memory::Page &Memory::makeWritable(Slot &S) {
  S.Owned = std::make_unique<Page>();
  if (S.Shared) {
    *S.Owned = *S.Shared;
    S.Shared.reset();
    ++Cow.Copied;
  } else {
    S.Owned->fill(0);
  }
  S.Write = S.Owned.get();
  S.Read = S.Owned.get();
  return *S.Owned;
}

const Memory::Page *Memory::pageForRead(uint64_t Addr) const {
  auto It = Pages.find(Addr / PageBytes);
  if (It == Pages.end())
    return nullptr;
  return It->second.Read;
}

uint8_t Memory::readU8(uint64_t Addr) const {
  const Page *P = pageForRead(Addr);
  if (!P)
    return 0;
  return (*P)[Addr % PageBytes];
}

void Memory::writeU8(uint64_t Addr, uint8_t Value) {
  pageFor(Addr)[Addr % PageBytes] = Value;
}

uint64_t Memory::readU64(uint64_t Addr) const {
  assert(Addr % 8 == 0 && "64-bit loads must be 8-byte aligned");
  const Page *P = pageForRead(Addr);
  if (!P)
    return 0;
  uint64_t Offset = Addr % PageBytes;
  uint64_t Value = 0;
  for (unsigned I = 0; I != 8; ++I)
    Value |= static_cast<uint64_t>((*P)[Offset + I]) << (8 * I);
  return Value;
}

void Memory::writeU64(uint64_t Addr, uint64_t Value) {
  assert(Addr % 8 == 0 && "64-bit stores must be 8-byte aligned");
  Page &P = pageFor(Addr);
  uint64_t Offset = Addr % PageBytes;
  for (unsigned I = 0; I != 8; ++I)
    P[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

void Memory::forEachPage(
    const std::function<void(uint64_t Base, const uint8_t *Data)> &Fn)
    const {
  std::vector<uint64_t> Bases;
  Bases.reserve(Pages.size());
  for (const auto &KV : Pages)
    Bases.push_back(KV.first);
  std::sort(Bases.begin(), Bases.end());
  for (uint64_t Base : Bases)
    Fn(Base * PageBytes, Pages.find(Base)->second.Read->data());
}

void Memory::restorePage(uint64_t Base, const uint8_t *Data) {
  assert(Base % PageBytes == 0 && "page base must be page-aligned");
  // Whole-page overwrite: bypass the COW copy (its bytes would be
  // clobbered immediately) by installing a fresh owned page directly.
  Slot &S = Pages[Base / PageBytes];
  if (!S.Owned) {
    S.Owned = std::make_unique<Page>();
    S.Shared.reset();
    S.Write = S.Owned.get();
    S.Read = S.Owned.get();
  }
  std::memcpy(S.Owned->data(), Data, PageBytes);
}

void Memory::attachShared(uint64_t Base, PageRef P) {
  assert(Base % PageBytes == 0 && "page base must be page-aligned");
  assert(P && "attaching a null shared page");
  Slot &S = Pages[Base / PageBytes];
  S.Owned.reset();
  S.Write = nullptr;
  S.Read = P.get();
  S.Shared = std::move(P);
  ++Cow.Attached;
}

Machine::Machine() { Regs.fill(0); }

void Machine::loadProgram(const Program &P) {
  Mem.reset();
  const std::vector<uint8_t> &Data = P.data();
  for (size_t I = 0; I != Data.size(); ++I)
    if (Data[I] != 0)
      Mem.writeU8(P.dataBase() + I, Data[I]);
  Pc = 0;
  Halted = false;
}
