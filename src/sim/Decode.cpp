//===- sim/Decode.cpp - Pre-decoded program image ------------------------===//

#include "sim/Decode.h"

#include "cfg/Cfg.h"
#include "telemetry/Counters.h"

using namespace bor;

namespace {

uint8_t flagsFor(const Inst &I) {
  uint8_t F = DIF_None;
  if (I.isLoad())
    F |= DIF_Load;
  if (I.isStore())
    F |= DIF_Store;
  if (I.isControl())
    F |= DIF_Control;
  if (I.isControl() || I.Op == Opcode::Marker)
    F |= DIF_EndsBlock;
  if (I.Op == Opcode::Jalr && I.Rd == RegZero && I.Rs1 == RegLr)
    F |= DIF_Return;
  return F;
}

int64_t immFor(const Inst &I) {
  // Shift amounts are architecturally masked to 0..63; fold the mask into
  // the image so the dispatch loop shifts unconditionally.
  if (I.Op == Opcode::Slli || I.Op == Opcode::Srli)
    return I.Imm & 63;
  return static_cast<int64_t>(I.Imm);
}

} // namespace

DecodedProgram::DecodedProgram(const Program &P) : Prog(P) {
  Insts.reserve(P.numInsts());
  for (size_t Index = 0; Index != P.numInsts(); ++Index) {
    const Inst &I = P.at(Index);
    assert(I.Rd < 32 && I.Rs1 < 32 && I.Rs2 < 32 &&
           "register index out of range in code image");
    DecodedInst D;
    D.Op = I.Op;
    D.Rd = I.Rd;
    D.Rs1 = I.Rs1;
    D.Rs2 = I.Rs2;
    D.Freq = I.Freq;
    D.Flags = flagsFor(I);
    D.Imm = immFor(I);
    // PC-relative control: target = PC + 4*Imm with 64-bit wraparound,
    // exactly as the step interpreter computed it.
    if (I.isCondBranch() || I.isDirectJump() || I.isBrr())
      D.Target = Program::pcForIndex(Index) +
                 4 * static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
    Insts.push_back(D);
  }

  // Block structure comes from the shared CFG IR rather than a private
  // re-derivation: run lengths are distances to the end of the enclosing
  // cfg::Module block (CFG blocks also break at branch targets), and the
  // per-instruction block ids key BBVs and profiles downstream.
  cfg::Module M = cfg::buildModule(P);
  NumBlocks = M.numBlocks();
  InstBlockIds.reserve(Insts.size());
  for (size_t Index = 0; Index != Insts.size(); ++Index)
    InstBlockIds.push_back(M.blockForIndex(Index));
  for (size_t Index = 0; Index != Insts.size(); ++Index) {
    const cfg::BasicBlock &B = M.block(InstBlockIds[Index]);
    size_t Run = B.OrigIndex + B.Insts.size() - Index;
    Insts[Index].RunLen = static_cast<uint16_t>(Run > 0xffff ? 0xffff : Run);
  }

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Programs("interp.decode.programs");
    static const telemetry::Counter DecInsts("interp.decode.insts");
    static const telemetry::Counter Blocks("interp.decode.blocks");
    Programs.add();
    DecInsts.add(Insts.size());
    Blocks.add(NumBlocks);
  }
}
