//===- sim/Decode.h - Pre-decoded program image --------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DecodedProgram is the execution-ready form of a Program: every
/// instruction is rewritten into a DecodedInst with its immediate
/// pre-sign-extended (and shift amounts pre-masked), its PC-relative
/// control target pre-resolved to a byte address, and classification
/// flags folded into one byte. Decoding happens once per Program — the
/// interpreter, the sampled-simulation runner, the pipeline's correct-path
/// oracle and the experiment harness all execute over one shared immutable
/// image, so the per-instruction dispatch loop never re-derives operands.
///
/// The image's static basic-block structure is no longer re-derived here:
/// decoding builds the program's cfg::Module (cfg/Cfg.h) and consumes its
/// block metadata — per-instruction block ids, run lengths to the end of
/// the enclosing CFG block, and the module's block count. One IR now
/// answers every "what block is this?" question (decode, BBV keying,
/// profile mapping) identically.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SIM_DECODE_H
#define BOR_SIM_DECODE_H

#include "isa/Program.h"

#include <vector>

namespace bor {

/// Classification flags of a DecodedInst.
enum DecodedInstFlags : uint8_t {
  DIF_None = 0,
  DIF_Load = 1u << 0,
  DIF_Store = 1u << 1,
  /// Can redirect fetch (cond branch, jump, brr, halt).
  DIF_Control = 1u << 2,
  /// Last instruction of its static basic block (control, halt or marker).
  DIF_EndsBlock = 1u << 3,
  /// Indirect jump that is a return by convention (jalr r0, lr).
  DIF_Return = 1u << 4,
};

/// One execution-ready instruction. Immediates are pre-sign-extended to 64
/// bits (shift immediates pre-masked to 0..63); for PC-relative control
/// instructions Target holds the resolved byte target.
struct DecodedInst {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  uint8_t Freq = 0;  ///< brr only: raw 4-bit frequency field.
  uint8_t Flags = 0; ///< DecodedInstFlags.
  /// Instructions from this one to the end of its CFG basic block,
  /// inclusive (>= 1; saturates at 0xffff). CFG blocks also break at
  /// branch targets (leaders), not just after terminators.
  uint16_t RunLen = 1;
  /// Pre-extended ALU/memory immediate or marker id.
  int64_t Imm = 0;
  /// Pre-resolved byte target of PC-relative control (branches, jmp/jal,
  /// brr). Zero for everything else, including jalr (register target).
  uint64_t Target = 0;

  bool endsBlock() const { return Flags & DIF_EndsBlock; }
  bool isReturn() const { return Flags & DIF_Return; }
};

/// The immutable decoded image of one Program. Construction is the only
/// mutation; afterwards the image is safe to share read-only across
/// ThreadPool workers. The source Program must outlive the decoded image
/// (ExecRecords and the data segment still refer into it).
class DecodedProgram {
public:
  explicit DecodedProgram(const Program &P);

  const Program &program() const { return Prog; }
  size_t numInsts() const { return Insts.size(); }
  /// Static basic blocks in the image — the cfg::Module's block count
  /// (leader-split runs count individually; a branch-to-end sentinel
  /// block counts too).
  size_t numBlocks() const { return NumBlocks; }

  /// CFG block id (cfg::BlockId) of instruction \p Index. Stable across
  /// layout edits of the module, so profiles and BBVs keyed on these ids
  /// survive relinearization.
  uint32_t instBlockId(size_t Index) const {
    assert(Index < InstBlockIds.size() && "instruction index out of range");
    return InstBlockIds[Index];
  }

  const DecodedInst &at(size_t Index) const {
    assert(Index < Insts.size() && "instruction index out of range");
    return Insts[Index];
  }

  /// Raw instruction array for the dispatch loop.
  const DecodedInst *insts() const { return Insts.data(); }

  /// Instruction index for a byte PC (asserts alignment and range).
  size_t indexForPc(uint64_t Pc) const { return Prog.indexForPc(Pc); }

private:
  const Program &Prog;
  std::vector<DecodedInst> Insts;
  std::vector<uint32_t> InstBlockIds; ///< per-inst cfg::BlockId
  size_t NumBlocks = 0;
};

} // namespace bor

#endif // BOR_SIM_DECODE_H
