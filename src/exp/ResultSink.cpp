//===- exp/ResultSink.cpp - Table and JSON-lines result sinks ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/ResultSink.h"

#include "exp/Json.h"
#include "support/Path.h"
#include "support/Table.h"

#include <algorithm>

namespace bor {
namespace exp {

//===----------------------------------------------------------------------===//
// TableSink
//===----------------------------------------------------------------------===//

void TableSink::begin(const ExperimentSpec &Spec) {
  Title = Spec.Title;
  Notes = Spec.Notes;
}

void TableSink::record(const RunRecord &R, bool IsSummary) {
  (void)IsSummary;
  auto AddColumn = [this](const std::string &Name) {
    if (std::find(Columns.begin(), Columns.end(), Name) == Columns.end())
      Columns.push_back(Name);
  };
  for (const auto &KV : R.Params)
    AddColumn(KV.first);
  for (const auto &KV : R.Metrics)
    AddColumn(KV.first);
  Records.push_back(R);
}

void TableSink::end() {
  if (!Title.empty())
    std::fprintf(Out, "%s\n\n", Title.c_str());

  Table T;
  T.addRow(Columns);
  for (const RunRecord &R : Records) {
    std::vector<std::string> Row;
    Row.reserve(Columns.size());
    for (const std::string &Col : Columns) {
      if (const std::string *P = R.findParam(Col)) {
        Row.push_back(*P);
        continue;
      }
      const Metric *M = R.findMetric(Col);
      if (!M) {
        Row.push_back("");
        continue;
      }
      switch (M->K) {
      case Metric::Kind::UInt:
        Row.push_back(Table::fmt(M->U));
        break;
      case Metric::Kind::Real:
        Row.push_back(Table::fmt(M->D, M->TablePrecision));
        break;
      case Metric::Kind::Text:
        Row.push_back(M->S);
        break;
      }
    }
    T.addRow(std::move(Row));
  }
  T.print(Out);
  if (!Notes.empty())
    std::fprintf(Out, "\n%s\n", Notes.c_str());
}

//===----------------------------------------------------------------------===//
// JsonLinesSink
//===----------------------------------------------------------------------===//

JsonLinesSink::~JsonLinesSink() {
  if (Owned && Out)
    std::fclose(Out);
}

std::unique_ptr<JsonLinesSink> JsonLinesSink::open(const std::string &Path) {
  std::string Err;
  if (!ensureParentDirs(Path, Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return nullptr;
  }
  // Stream into the temp name; end() publishes it. A pre-existing stale
  // temp file from a killed run is overwritten here.
  std::string Tmp = atomicTempPath(Path);
  std::FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", Tmp.c_str());
    return nullptr;
  }
  auto Sink = std::make_unique<JsonLinesSink>(F, /*Owned=*/true);
  Sink->FinalPath = Path;
  return Sink;
}

void JsonLinesSink::end() {
  if (FinalPath.empty())
    return;
  std::string Tmp = atomicTempPath(FinalPath);
  bool Ok = std::fflush(Out) == 0;
  Ok = std::fclose(Out) == 0 && Ok;
  Out = nullptr;
  if (!Ok || std::rename(Tmp.c_str(), FinalPath.c_str()) != 0) {
    std::fprintf(stderr, "error publishing '%s'\n", FinalPath.c_str());
    std::remove(Tmp.c_str());
  }
}

void JsonLinesSink::begin(const ExperimentSpec &Spec) {
  Experiment = Spec.Name;
  JsonObjectWriter W;
  W.field("experiment", Spec.Name);
  W.field("kind", "header");
  W.field("title", Spec.Title);
  W.fieldRaw("cells", jsonNumber(static_cast<uint64_t>(Spec.Cells.size())));
  std::fprintf(Out, "%s\n", W.finish().c_str());
}

void JsonLinesSink::record(const RunRecord &R, bool IsSummary) {
  JsonObjectWriter W;
  W.field("experiment", Experiment);
  W.field("kind", IsSummary ? "summary" : "cell");
  if (!IsSummary)
    W.fieldRaw("cell", jsonNumber(static_cast<uint64_t>(CellIndex++)));

  JsonObjectWriter Params;
  for (const auto &KV : R.Params)
    Params.field(KV.first, KV.second);
  W.fieldRaw("params", Params.finish());

  JsonObjectWriter Metrics;
  for (const auto &KV : R.Metrics) {
    const Metric &M = KV.second;
    switch (M.K) {
    case Metric::Kind::UInt:
      Metrics.fieldRaw(KV.first, jsonNumber(M.U));
      break;
    case Metric::Kind::Real:
      Metrics.fieldRaw(KV.first, jsonNumber(M.D));
      break;
    case Metric::Kind::Text:
      Metrics.field(KV.first, M.S);
      break;
    }
  }
  W.fieldRaw("metrics", Metrics.finish());

  std::fprintf(Out, "%s\n", W.finish().c_str());
  std::fflush(Out);
}

} // namespace exp
} // namespace bor
