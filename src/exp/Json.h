//===- exp/Json.h - Minimal JSON rendering for result records ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough JSON to emit the experiment runner's machine-readable
/// results — string escaping, deterministic number formatting, and a small
/// single-object writer used to build one JSON-lines record at a time —
/// plus a small recursive-descent parser (jsonParse into a JsonValue DOM)
/// so tests and tools can round-trip-validate what the library wrote:
/// result records, telemetry trace files. The parser favours strictness
/// over speed; nothing on a measurement path parses JSON.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_JSON_H
#define BOR_EXP_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bor {
namespace exp {

/// Escapes \p S for inclusion inside a JSON string literal (without the
/// surrounding quotes): quote, backslash and control characters become
/// their escape sequences; everything else passes through byte-for-byte.
std::string jsonEscape(std::string_view S);

/// Renders \p V as a JSON number. Integral values in the exactly-
/// representable range print without a decimal point; other finite values
/// print with the shortest precision that round-trips through strtod;
/// non-finite values (which JSON cannot express) print as null.
std::string jsonNumber(double V);

/// Renders an unsigned integer as a JSON number (exact, never scientific).
std::string jsonNumber(uint64_t V);

/// Accumulates one flat JSON object, `field` by `field`, preserving
/// insertion order. finish() closes the object and returns it.
class JsonObjectWriter {
public:
  /// Adds "key": "value" with \p Value escaped and quoted.
  void field(std::string_view Key, std::string_view Value);

  /// Adds "key": <raw> where \p Raw is already valid JSON (a number, an
  /// object, an array...).
  void fieldRaw(std::string_view Key, std::string_view Raw);

  /// Closes and returns the object. The writer must not be reused.
  std::string finish();

private:
  void comma();

  std::string Buf = "{";
  bool First = true;
};

/// One parsed JSON value: a small tagged DOM. Only the member matching
/// the kind is meaningful; objects keep their fields in source order and
/// allow duplicate keys (find() returns the first).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolVal = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object field lookup; null when this is not an object or the key is
  /// absent.
  const JsonValue *find(std::string_view Key) const;
};

/// Parses \p Text (one complete JSON value, surrounding whitespace
/// allowed) into \p Out. Returns false and sets \p Err to
/// "offset N: <what went wrong>" on malformed input. Strict: no trailing
/// garbage, no comments, no unpaired surrogates; \uXXXX escapes decode to
/// UTF-8. Nesting is capped generously to keep recursion bounded.
bool jsonParse(std::string_view Text, JsonValue &Out, std::string &Err);

} // namespace exp
} // namespace bor

#endif // BOR_EXP_JSON_H
