//===- exp/Json.h - Minimal JSON rendering for result records ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough JSON to emit the experiment runner's machine-readable
/// results: string escaping, deterministic number formatting, and a small
/// single-object writer used to build one JSON-lines record at a time.
/// There is deliberately no parser and no DOM.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_JSON_H
#define BOR_EXP_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace bor {
namespace exp {

/// Escapes \p S for inclusion inside a JSON string literal (without the
/// surrounding quotes): quote, backslash and control characters become
/// their escape sequences; everything else passes through byte-for-byte.
std::string jsonEscape(std::string_view S);

/// Renders \p V as a JSON number. Integral values in the exactly-
/// representable range print without a decimal point; other finite values
/// print with the shortest precision that round-trips through strtod;
/// non-finite values (which JSON cannot express) print as null.
std::string jsonNumber(double V);

/// Renders an unsigned integer as a JSON number (exact, never scientific).
std::string jsonNumber(uint64_t V);

/// Accumulates one flat JSON object, `field` by `field`, preserving
/// insertion order. finish() closes the object and returns it.
class JsonObjectWriter {
public:
  /// Adds "key": "value" with \p Value escaped and quoted.
  void field(std::string_view Key, std::string_view Value);

  /// Adds "key": <raw> where \p Raw is already valid JSON (a number, an
  /// object, an array...).
  void fieldRaw(std::string_view Key, std::string_view Raw);

  /// Closes and returns the object. The writer must not be reused.
  std::string finish();

private:
  void comma();

  std::string Buf = "{";
  bool First = true;
};

} // namespace exp
} // namespace bor

#endif // BOR_EXP_JSON_H
