//===- exp/Driver.h - Command-line driver for registered experiments -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared command-line front end of the experiment runner. bor-bench
/// is a thin main() around benchMain(); each per-figure binary is a thin
/// main() around experimentMain("<name>", ...). Both accept the same
/// per-run flags:
///
///   --threads N   worker threads (default: hardware concurrency)
///   --json PATH   JSON-lines output path (default BENCH_<name>.json)
///   --no-json     suppress the JSON-lines sink
///   --no-table    suppress the human-readable table
///   --scale N     divide workload sizes by N (quick runs, smoke tests)
///
/// and bor-bench additionally understands --list, --experiment NAME and
/// --all.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_DRIVER_H
#define BOR_EXP_DRIVER_H

namespace bor {
namespace exp {

/// Entry point of the bor-bench tool. Returns the process exit code.
int benchMain(int Argc, char **Argv);

/// Entry point of a single-experiment wrapper binary: runs \p Name with
/// the per-run flags from the command line. Returns the process exit code.
int experimentMain(const char *Name, int Argc, char **Argv);

} // namespace exp
} // namespace bor

#endif // BOR_EXP_DRIVER_H
