//===- exp/Manifest.h - Self-describing run manifests ---------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable record of one bor-bench invocation. `--run-dir DIR` writes
/// a directory holding everything needed to re-interpret the run later:
///
///   manifest.json     what ran and what produced it (build + config)
///   <name>.json       per-experiment JSON-lines results
///   counters.json     the merged counter snapshot, with descriptions
///   timeseries.json   per-interval series from sampled runs
///
/// The loading side reads a run dir — or a bare committed JSON-lines
/// baseline like bench/BENCH_fig13.json — into one LoadedRun value, which
/// is what bor-report compares. See docs/REPORTING.md.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_MANIFEST_H
#define BOR_EXP_MANIFEST_H

#include "sample/SamplingPlan.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bor {
namespace exp {

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

/// Everything manifest.json records about the invocation. Build metadata
/// comes from support/BuildInfo.h at write time.
struct ManifestInfo {
  std::string Tool = "bor-bench";
  std::string Command; ///< the argv, space-joined

  uint64_t Scale = 1;
  unsigned Threads = 1;
  bool Sample = false;
  SamplingPlan Plan;
  bool CkptLibrary = false;
  unsigned CkptRegions = 0;

  /// Distributed-sweep provenance (emitted only when Serve is true, so
  /// manifests from plain runs are byte-identical to before the service
  /// existed).
  bool Serve = false;
  unsigned SpawnWorkers = 0;

  /// Degradation accounting, summed over the run's experiments; emitted
  /// only when the run was partial (any cell lost or timed out).
  size_t CellsLost = 0;
  size_t CellsTimedOut = 0;

  std::vector<std::string> Experiments;

  /// Dir-relative result file per experiment, in run order.
  std::vector<std::pair<std::string, std::string>> ResultFiles;
  std::string CountersFile;   ///< empty = no counter snapshot
  std::string TimeSeriesFile; ///< empty = no time series
  std::string TraceFile;      ///< as given on the command line, may be empty
};

/// Writes DIR/manifest.json (creating DIR). Returns false with \p Err set
/// on I/O failure.
bool writeManifest(const std::string &Dir, const ManifestInfo &Info,
                   std::string &Err);

//===----------------------------------------------------------------------===//
// Loading (the bor-report side)
//===----------------------------------------------------------------------===//

/// One metric value as loaded from a results file.
struct LoadedMetric {
  bool IsNumber = true;
  double Num = 0.0;
  std::string Text; ///< Text metrics (verdicts etc.)
};

/// One cell or summary record.
struct LoadedRecord {
  bool IsSummary = false;
  int64_t Cell = -1; ///< cell index, -1 for summaries
  std::vector<std::pair<std::string, std::string>> Params;
  std::vector<std::pair<std::string, LoadedMetric>> Metrics;

  const LoadedMetric *findMetric(const std::string &Name) const;

  /// "k1=v1 k2=v2 ..." — the identity used to match records across runs.
  std::string paramKey() const;
};

struct LoadedExperiment {
  std::string Name;
  std::string Title;
  uint64_t Cells = 0; ///< header's declared grid size
  std::vector<LoadedRecord> Records;
};

/// One per-interval series from timeseries.json.
struct LoadedSeries {
  std::string Experiment;
  int64_t Cell = 0;
  uint64_t Run = 0;
  std::vector<double> Ipc, FlushFrac, BrrRate, FfInsts;
};

/// A fully loaded comparison side: a run dir or a bare results file.
struct LoadedRun {
  std::string Source; ///< path as given (report header)
  bool HasManifest = false;

  // Manifest metadata (empty strings when HasManifest is false).
  std::string Command, GitRevision, Compiler, BuildType;
  uint64_t Scale = 0;
  unsigned Threads = 0;
  bool Sample = false;

  std::vector<LoadedExperiment> Experiments;
  std::vector<std::pair<std::string, uint64_t>> Counters; ///< name-sorted
  std::vector<LoadedSeries> Series;

  const LoadedExperiment *findExperiment(const std::string &Name) const;
};

/// Parses one JSON-lines results stream (possibly several experiments
/// appended) into \p Out. Returns false with \p Err set on malformed
/// input.
bool parseResultsJsonLines(const std::string &Text,
                           std::vector<LoadedExperiment> &Out,
                           std::string &Err);

/// Loads \p Path — a run directory (containing manifest.json), a path to
/// a manifest.json itself, or a bare JSON-lines results file — into
/// \p Out. Returns false with \p Err set when anything cannot be read or
/// parsed.
bool loadRun(const std::string &Path, LoadedRun &Out, std::string &Err);

} // namespace exp
} // namespace bor

#endif // BOR_EXP_MANIFEST_H
