//===- exp/Experiment.cpp - The process-wide experiment registry ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"

#include <cassert>

namespace bor {
namespace exp {

ExperimentRegistry &ExperimentRegistry::instance() {
  static ExperimentRegistry R;
  return R;
}

void ExperimentRegistry::add(std::string Name, std::string Description,
                             Factory F) {
  Entries[std::move(Name)] = Entry{std::move(Description), std::move(F)};
}

bool ExperimentRegistry::contains(const std::string &Name) const {
  return Entries.count(Name) != 0;
}

ExperimentSpec ExperimentRegistry::create(
    const std::string &Name, const ExperimentOptions &Options) const {
  auto It = Entries.find(Name);
  assert(It != Entries.end() && "unknown experiment");
  ExperimentSpec Spec = It->second.Make(Options);
  Spec.Name = Name;
  return Spec;
}

std::vector<std::pair<std::string, std::string>>
ExperimentRegistry::list() const {
  std::vector<std::pair<std::string, std::string>> Out;
  for (const auto &KV : Entries)
    Out.emplace_back(KV.first, KV.second.Description);
  return Out;
}

} // namespace exp
} // namespace bor
