//===- exp/ExperimentsSvc.cpp - Service smoke-test experiment -------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `svc_smoke` experiment: a small, purely deterministic grid built
/// for exercising the distributed sweep service (src/svc/) and the chaos
/// gate. Every metric is a pure function of the cell's parameters — no
/// wall-clock, no host state — so a distributed run's JSON must be
/// byte-identical to a --threads run with no field stripping at all.
/// The metrics deliberately cover every Metric kind the wire codec must
/// round-trip losslessly: a full-range u64 checksum, a precision-carrying
/// real, and a text verdict.
///
/// Two environment knobs let tests shape wall-clock behaviour without
/// touching determinism of the *values*:
///
///   BOR_SVC_SMOKE_SLEEP_MS    every cell sleeps this long before
///                             computing (default 0)
///   BOR_SVC_SMOKE_SLEEP_CELL  restrict the sleep to this cell index
///                             (default: all cells)
///
/// A slow cell is how the --cell-timeout and heartbeat-expiry paths are
/// driven in tests; the computed records stay identical either way.
///
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace bor {
namespace exp {

namespace {

constexpr size_t SmokeStreams = 4;
constexpr uint64_t SmokeLengths[] = {1000, 4000, 16000};

/// splitmix64 — cheap, well-mixed, and emphatically 64-bit so the u64
/// wire codec is exercised across the full range (values above 2^53
/// corrupt if anything routes them through a double).
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

void maybeSleep(size_t Index) {
  const char *Ms = std::getenv("BOR_SVC_SMOKE_SLEEP_MS");
  if (!Ms || Ms[0] == '\0')
    return;
  if (const char *Cell = std::getenv("BOR_SVC_SMOKE_SLEEP_CELL"))
    if (Cell[0] != '\0' && std::strtoull(Cell, nullptr, 10) != Index)
      return;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::strtoull(Ms, nullptr, 10)));
}

ExperimentSpec makeSvcSmoke(const ExperimentOptions &Opt) {
  ExperimentSpec S;
  S.Name = "svc_smoke";
  S.Title = "Service smoke grid: deterministic checksums per cell";
  S.Notes = "Pure-compute cells for exercising the sweep service; every "
            "metric is a function of (stream, length) only.";

  for (size_t Stream = 0; Stream != SmokeStreams; ++Stream) {
    for (uint64_t Len : SmokeLengths) {
      ParamSet Cell;
      Cell.emplace_back("stream", std::to_string(Stream));
      Cell.emplace_back("length", std::to_string(Len));
      S.Cells.push_back(std::move(Cell));
    }
  }

  uint64_t Scale = Opt.Scale ? Opt.Scale : 1;
  S.Run = [Scale](const ParamSet &Cell, size_t Index) {
    maybeSleep(Index);
    uint64_t Stream = std::strtoull(Cell[0].second.c_str(), nullptr, 10);
    uint64_t Len =
        std::max<uint64_t>(1, std::strtoull(Cell[1].second.c_str(), nullptr,
                                            10) /
                                  Scale);
    uint64_t Sum = 0, Csum = mix64(Stream);
    for (uint64_t I = 0; I != Len; ++I) {
      Csum = mix64(Csum ^ I);
      Sum += Csum >> 32;
    }
    RunRecord R;
    R.Params = Cell;
    R.metric("checksum", Csum);
    R.metric("mean_hi32",
             static_cast<double>(Sum) / static_cast<double>(Len), 3);
    R.metric("parity", std::string(Csum & 1 ? "odd" : "even"));
    return R;
  };

  S.Summarize = [](const std::vector<RunRecord> &Records) {
    uint64_t Xor = 0;
    for (const RunRecord &R : Records)
      if (const Metric *M = R.findMetric("checksum"))
        Xor ^= M->U;
    RunRecord Sum;
    Sum.param("summary", "all-streams");
    Sum.metric("cells", static_cast<uint64_t>(Records.size()));
    Sum.metric("checksum_xor", Xor);
    return std::vector<RunRecord>{Sum};
  };

  return S;
}

} // namespace

void registerSvcExperiments() {
  ExperimentRegistry::instance().add(
      "svc_smoke",
      "deterministic smoke grid for the distributed sweep service",
      makeSvcSmoke);
}

} // namespace exp
} // namespace bor
