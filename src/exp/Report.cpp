//===- exp/Report.cpp - CI-aware perf-regression comparison ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Report.h"

#include "exp/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <tuple>

using namespace bor;
using namespace bor::exp;

namespace {

bool endsWith(const std::string &S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

bool contains(const std::string &S, std::string_view Needle) {
  return S.find(Needle) != std::string::npos;
}

/// Which way is "worse" for a metric. Unknown directions are conservative:
/// any significant move counts as a regression.
enum class Direction { HigherWorse, LowerWorse, Unknown };

Direction metricDirection(const std::string &Name) {
  if (Name == "ipc" || endsWith(Name, "_ipc") || Name == "accuracy" ||
      contains(Name, "full_width"))
    return Direction::LowerWorse;
  if (contains(Name, "cycles") || contains(Name, "miss") ||
      contains(Name, "mispredict") || contains(Name, "flush") ||
      contains(Name, "stall") || contains(Name, "overhead") ||
      contains(Name, "spread") || contains(Name, "error") ||
      endsWith(Name, "_ci95"))
    return Direction::HigherWorse;
  return Direction::Unknown;
}

double thresholdFor(const ReportOptions &Opt, const std::string &Name) {
  for (const auto &[Metric, Pct] : Opt.MetricThresholds)
    if (Metric == Name)
      return Pct;
  return Opt.ThresholdPct;
}

std::string fmtValue(double V) { return jsonNumber(V); }

std::string fmtPct(double Pct) {
  if (std::isinf(Pct))
    return Pct > 0 ? "+inf%" : "-inf%";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%+.2f%%", Pct);
  return Buf;
}

/// One row of the metric-change table, kept for sorting by severity.
struct Change {
  std::string Experiment;
  std::string Record;
  std::string Metric;
  std::string BaseText, CandText;
  std::string PctText;
  double AbsPct = 0.0;
  const char *Status = "";
};

/// Index of an experiment's records by their param identity. Duplicate
/// keys (which the specs never produce) get an occurrence suffix so no
/// record silently vanishes from the comparison.
std::map<std::string, const LoadedRecord *>
indexRecords(const LoadedExperiment &E) {
  std::map<std::string, const LoadedRecord *> Index;
  std::map<std::string, unsigned> Seen;
  for (const LoadedRecord &R : E.Records) {
    std::string Key = R.paramKey();
    unsigned N = Seen[Key]++;
    if (N)
      Key += " #" + std::to_string(N);
    Index.emplace(std::move(Key), &R);
  }
  return Index;
}

} // namespace

bool bor::exp::isWallClockMetric(const std::string &Name) {
  return endsWith(Name, "_ms") || Name == "wall_s" ||
         Name == "sampled_wallclock_pct";
}

std::string bor::exp::sparkline(const std::vector<double> &Values) {
  static const char *Levels[] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  if (Values.empty())
    return "";
  double Lo = Values[0], Hi = Values[0];
  for (double V : Values) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  std::string Out;
  for (double V : Values) {
    int Level = 3; // constant series: mid height
    if (Hi > Lo) {
      Level = static_cast<int>((V - Lo) / (Hi - Lo) * 7.0 + 0.5);
      Level = std::max(0, std::min(7, Level));
    }
    Out += Levels[Level];
  }
  return Out;
}

ReportResult bor::exp::compareRuns(const LoadedRun &Base,
                                   const LoadedRun &Cand,
                                   const ReportOptions &Opt) {
  ReportResult Res;
  std::vector<std::string> Structural;
  std::vector<Change> Changes;

  //===--- Experiments and records ----------------------------------------===//

  for (const LoadedExperiment &BE : Base.Experiments) {
    const LoadedExperiment *CE = Cand.findExperiment(BE.Name);
    if (!CE) {
      Structural.push_back("experiment `" + BE.Name +
                           "` present only in the baseline");
      continue;
    }
    if (BE.Title != CE->Title)
      Structural.push_back("experiment `" + BE.Name +
                           "` title differs (different scale/config?): \"" +
                           BE.Title + "\" vs \"" + CE->Title + "\"");

    auto BIdx = indexRecords(BE);
    auto CIdx = indexRecords(*CE);
    for (const auto &[Key, BR] : BIdx) {
      auto It = CIdx.find(Key);
      if (It == CIdx.end()) {
        Structural.push_back("`" + BE.Name + "` record [" + Key +
                             "] present only in the baseline");
        continue;
      }
      const LoadedRecord *CR = It->second;

      for (const auto &[Name, BM] : BR->Metrics) {
        if (isWallClockMetric(Name))
          continue;
        const LoadedMetric *CM = CR->findMetric(Name);
        if (!CM) {
          Structural.push_back("`" + BE.Name + "` [" + Key + "] metric `" +
                               Name + "` present only in the baseline");
          continue;
        }

        if (!BM.IsNumber || !CM->IsNumber) {
          // Text metrics (verdicts): any change is a regression — a
          // PASS/FAIL flip must stop the build either way.
          std::string BT = BM.IsNumber ? fmtValue(BM.Num) : BM.Text;
          std::string CT = CM->IsNumber ? fmtValue(CM->Num) : CM->Text;
          if (BT != CT) {
            ++Res.Regressions;
            Changes.push_back({BE.Name, Key, Name, BT, CT, "—",
                               std::numeric_limits<double>::infinity(),
                               "regression (text)"});
          }
          continue;
        }

        double Delta = CM->Num - BM.Num;
        double Pct = BM.Num != 0.0
                         ? 100.0 * Delta / std::fabs(BM.Num)
                         : (Delta == 0.0
                                ? 0.0
                                : std::copysign(
                                      std::numeric_limits<double>::infinity(),
                                      Delta));
        if (std::fabs(Pct) <= thresholdFor(Opt, Name))
          continue;

        // CI-aware significance: when both sides carry a 95% CI sibling,
        // overlapping intervals mean the move is within sampling noise.
        if (!endsWith(Name, "_ci95")) {
          const LoadedMetric *BCi = BR->findMetric(Name + "_ci95");
          const LoadedMetric *CCi = CR->findMetric(Name + "_ci95");
          if (BCi && CCi && BCi->IsNumber && CCi->IsNumber &&
              std::fabs(Delta) <= BCi->Num + CCi->Num)
            continue;
        }

        Direction Dir = metricDirection(Name);
        bool Worse = Dir == Direction::Unknown ||
                     (Dir == Direction::HigherWorse && Delta > 0) ||
                     (Dir == Direction::LowerWorse && Delta < 0);
        if (Worse)
          ++Res.Regressions;
        else
          ++Res.Improvements;
        Changes.push_back({BE.Name, Key, Name, fmtValue(BM.Num),
                           fmtValue(CM->Num), fmtPct(Pct), std::fabs(Pct),
                           Worse ? (Dir == Direction::Unknown ? "changed"
                                                              : "regression")
                                 : "improvement"});
      }
    }
    for (const auto &[Key, CR] : CIdx) {
      (void)CR;
      if (!BIdx.count(Key))
        Structural.push_back("`" + BE.Name + "` record [" + Key +
                             "] present only in the candidate");
    }
  }
  for (const LoadedExperiment &CE : Cand.Experiments)
    if (!Base.findExperiment(CE.Name))
      Structural.push_back("experiment `" + CE.Name +
                           "` present only in the candidate");

  Res.Structural = static_cast<unsigned>(Structural.size());
  std::sort(Changes.begin(), Changes.end(),
            [](const Change &A, const Change &B) {
              if (A.AbsPct != B.AbsPct)
                return A.AbsPct > B.AbsPct;
              return std::tie(A.Experiment, A.Record, A.Metric) <
                     std::tie(B.Experiment, B.Record, B.Metric);
            });

  //===--- Counters --------------------------------------------------------===//

  struct CounterDiff {
    std::string Name;
    uint64_t BaseV = 0, CandV = 0;
    double AbsPct = 0.0;
  };
  std::vector<CounterDiff> CounterDiffs;
  if (!Base.Counters.empty() && !Cand.Counters.empty()) {
    std::map<std::string, std::pair<uint64_t, uint64_t>> Merged;
    for (const auto &[Name, V] : Base.Counters)
      Merged[Name].first = V;
    for (const auto &[Name, V] : Cand.Counters)
      Merged[Name].second = V;
    for (const auto &[Name, BV] : Merged) {
      if (BV.first == BV.second)
        continue;
      double Pct =
          BV.first != 0
              ? 100.0 * (static_cast<double>(BV.second) -
                         static_cast<double>(BV.first)) /
                    static_cast<double>(BV.first)
              : std::numeric_limits<double>::infinity();
      CounterDiffs.push_back({Name, BV.first, BV.second, std::fabs(Pct)});
    }
    std::sort(CounterDiffs.begin(), CounterDiffs.end(),
              [](const CounterDiff &A, const CounterDiff &B) {
                if (A.AbsPct != B.AbsPct)
                  return A.AbsPct > B.AbsPct;
                return A.Name < B.Name;
              });
  }

  //===--- Render ----------------------------------------------------------===//

  std::string &Md = Res.Markdown;
  Md += "# bor-report\n\n";
  auto Side = [&Md](const char *Label, const LoadedRun &Run) {
    Md += "- **" + std::string(Label) + "**: `" + Run.Source + "`";
    if (Run.HasManifest) {
      Md += " (git " + Run.GitRevision;
      if (!Run.Compiler.empty())
        Md += ", " + Run.Compiler;
      Md += ")";
      if (!Run.Command.empty())
        Md += " — `" + Run.Command + "`";
    }
    Md += "\n";
  };
  Side("baseline", Base);
  Side("candidate", Cand);
  {
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "- **threshold**: ±%.2f%% relative change",
                  Opt.ThresholdPct);
    Md += Buf;
    for (const auto &[Metric, Pct] : Opt.MetricThresholds) {
      std::snprintf(Buf, sizeof(Buf), "; %s ±%.2f%%", Metric.c_str(),
                    Pct);
      Md += Buf;
    }
    Md += "\n\n";
  }

  if (Res.clean() && Res.Improvements == 0) {
    Md += "## Verdict: CLEAN\n\nNo metric moved beyond its threshold.\n";
  } else {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "## Verdict: %s\n\n%u regression(s), %u improvement(s), "
                  "%u structural difference(s).\n",
                  Res.clean() ? "CLEAN (with improvements)" : "REGRESSIONS",
                  Res.Regressions, Res.Improvements, Res.Structural);
    Md += Buf;
  }

  if (!Structural.empty()) {
    Md += "\n## Structural differences\n\n";
    for (const std::string &S : Structural)
      Md += "- " + S + "\n";
  }

  if (!Changes.empty()) {
    Md += "\n## Metric changes\n\n";
    Md += "| experiment | record | metric | baseline | candidate | Δ% | "
          "status |\n";
    Md += "|---|---|---|---|---|---|---|\n";
    size_t Shown = std::min(Changes.size(), Opt.MaxRows);
    for (size_t I = 0; I != Shown; ++I) {
      const Change &C = Changes[I];
      Md += "| " + C.Experiment + " | " + C.Record + " | " + C.Metric +
            " | " + C.BaseText + " | " + C.CandText + " | " + C.PctText +
            " | " + C.Status + " |\n";
    }
    if (Shown != Changes.size())
      Md += "\n(and " + std::to_string(Changes.size() - Shown) +
            " more change(s) beyond the row cap)\n";
  }

  if (!CounterDiffs.empty()) {
    Md += "\n## Counter diff (informational, not gated)\n\n";
    Md += "| counter | baseline | candidate | Δ% |\n|---|---|---|---|\n";
    size_t Shown = std::min(CounterDiffs.size(), Opt.MaxCounterRows);
    for (size_t I = 0; I != Shown; ++I) {
      const CounterDiff &C = CounterDiffs[I];
      double Pct = C.BaseV != 0
                       ? 100.0 * (static_cast<double>(C.CandV) -
                                  static_cast<double>(C.BaseV)) /
                             static_cast<double>(C.BaseV)
                       : std::numeric_limits<double>::infinity();
      Md += "| " + C.Name + " | " + std::to_string(C.BaseV) + " | " +
            std::to_string(C.CandV) + " | " + fmtPct(Pct) + " |\n";
    }
    if (Shown != CounterDiffs.size())
      Md += "\n(and " + std::to_string(CounterDiffs.size() - Shown) +
            " more differing counter(s))\n";
  }

  //===--- Sparklines -------------------------------------------------------===//

  if (!Base.Series.empty() || !Cand.Series.empty()) {
    Md += "\n## Per-interval IPC\n\n";
    auto Mean = [](const std::vector<double> &V) {
      double S = 0;
      for (double X : V)
        S += X;
      return V.empty() ? 0.0 : S / static_cast<double>(V.size());
    };
    auto Key = [](const LoadedSeries &S) {
      return S.Experiment + " cell " + std::to_string(S.Cell) + " run " +
             std::to_string(S.Run);
    };
    size_t Shown = 0;
    for (const LoadedSeries &BS : Base.Series) {
      if (Shown == Opt.MaxSparklines)
        break;
      const LoadedSeries *CS = nullptr;
      for (const LoadedSeries &S : Cand.Series)
        if (S.Experiment == BS.Experiment && S.Cell == BS.Cell &&
            S.Run == BS.Run) {
          CS = &S;
          break;
        }
      char Buf[64];
      Md += "- `" + Key(BS) + "`: " + sparkline(BS.Ipc);
      std::snprintf(Buf, sizeof(Buf), " (mean %.4f)", Mean(BS.Ipc));
      Md += Buf;
      if (CS) {
        Md += " → " + sparkline(CS->Ipc);
        std::snprintf(Buf, sizeof(Buf), " (mean %.4f)", Mean(CS->Ipc));
        Md += Buf;
      } else {
        Md += " → (no candidate series)";
      }
      Md += "\n";
      ++Shown;
    }
    if (Base.Series.empty())
      Md += "(baseline carries no per-interval series)\n";
    size_t Total = std::max(Base.Series.size(), Cand.Series.size());
    if (Total > Shown && !Base.Series.empty())
      Md += "\n(" + std::to_string(Total - Shown) +
            " more series not shown)\n";
  }

  return Res;
}
