//===- exp/Harness.h - Shared drivers for the paper's experiments --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement drivers shared by the registered experiments and the
/// remaining standalone bench binaries: the accuracy-experiment driver
/// (Figures 9/10 and the sensitivity study) and the timed-microbenchmark
/// driver over the Section 5.3 workload (Figures 2/13/14 and the
/// ablations). Formerly bench/BenchUtil.h; now part of the library so the
/// experiment registry can use them.
///
/// Every function here is thread-safe: all state is constructed per call
/// from the arguments, which is what lets the ParallelRunner fan cells out
/// across cores.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_HARNESS_H
#define BOR_EXP_HARNESS_H

#include "profile/TraceGen.h"
#include "sample/SampledRunner.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h"

#include <vector>

namespace bor {

namespace ckpt {
class LibraryPool;
} // namespace ckpt

namespace exp {

/// Accuracy of the three Figure-9/10 sampling techniques on one benchmark
/// stream. The LFSR technique is run with several seeds in the same pass
/// so the tables can report its seed-to-seed spread (the counters are
/// deterministic and need no such treatment).
struct AccuracyRow {
  double SwCount = 0;
  double HwCount = 0;
  double Random = 0;       ///< mean over seeds
  double RandomSpread = 0; ///< max - min over seeds
};

AccuracyRow runAccuracy(const BenchmarkModel &Model, uint64_t Interval,
                        uint64_t BrrSeed);

/// Timed microbenchmark run: region-of-interest cycles plus the stats the
/// figures report. In sampled mode RoiCycles is an estimate (ROI
/// instruction span over the sampled mean IPC) and Stats is synthesized by
/// scaling the measured intervals' counters up to the full stream, so
/// downstream metric code works identically; Sampled / IpcCi95 /
/// SampleIntervals report the estimate's provenance and precision.
struct MicroRun {
  uint64_t RoiCycles = 0;
  uint64_t DynamicSiteVisits = 0;
  PipelineStats Stats;
  bool Sampled = false;
  double IpcCi95 = 0;          ///< 95% CI half-width on the sampled IPC.
  uint64_t SampleIntervals = 0; ///< detailed intervals behind the estimate.

  /// Sampled mode only: wall-clock the run spent per phase (the sampler's
  /// self-profiling timers; all zero in full-pipeline runs).
  double FfMs = 0;
  double WarmMs = 0;
  double MeasureMs = 0;
};

/// Runs the microbenchmark through the full detailed Pipeline, or — when
/// \p Plan is non-null — through the SampledRunner, which executes the
/// same instruction stream but times only the plan's periodic intervals.
/// \p Telemetry (optional) enables trace spans and detail events in
/// whichever engine runs.
///
/// \p CkptPool (sampled mode only): resume fast-forward spans from the
/// pool's shared COW checkpoint library for this cell's program instead of
/// re-executing them; the result is field-identical to plain sampling.
/// \p CkptRegions additionally restricts measurement to at most that many
/// BBV-selected representative program phases (a deterministic estimate).
MicroRun runMicrobench(const InstrumentationConfig &Instr, size_t NumChars,
                       const PipelineConfig &Machine = PipelineConfig(),
                       const SamplingPlan *Plan = nullptr,
                       const telemetry::TelemetrySink *Telemetry = nullptr,
                       ckpt::LibraryPool *CkptPool = nullptr,
                       unsigned CkptRegions = 0);

InstrumentationConfig microConfig(SamplingFramework F, DuplicationMode Dup,
                                  uint64_t Interval, bool IncludeBody);

/// One sampled execution of \p Dec: plain runSampled, or — when \p
/// CkptPool is set — the checkpoint-library path (shared-prefix resume;
/// with \p CkptRegions != 0, measurement restricted to that many
/// BBV-selected representative phases). The engine switch every timed
/// experiment driver routes through.
SampledResult runSampledMaybeLibrary(const DecodedProgram &Dec,
                                     const SamplingPlan &Plan,
                                     const PipelineConfig &Machine,
                                     const telemetry::TelemetrySink *Telemetry,
                                     ckpt::LibraryPool *CkptPool,
                                     unsigned CkptRegions);

/// The character count used by the timing figures. The paper processes
/// half a million characters; that is also affordable here.
constexpr size_t FigureChars = 500000;

/// The sampling-interval sweep of Figures 13/14.
std::vector<uint64_t> figureIntervals();

} // namespace exp
} // namespace bor

#endif // BOR_EXP_HARNESS_H
