//===- exp/Runner.cpp - Parallel, deterministic experiment execution -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Runner.h"

#include "exp/Json.h"
#include "telemetry/Counters.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace bor {
namespace exp {

namespace {

/// Progress reporting for long grids: workers call cellDone() as cells
/// finish; a line goes to stderr at most every ~2 seconds (plus a final
/// one), with an ETA extrapolated from completed-cell wall-clock.
class Heartbeat {
public:
  Heartbeat(ProgressMode Mode, const std::string &Name, size_t Total)
      : Mode(Total > 0 ? Mode : ProgressMode::Off), Name(Name), Total(Total),
        Start(Clock::now()), LastPrint(Start) {}

  void cellDone() {
    if (Mode == ProgressMode::Off)
      return;
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Done;
    Clock::time_point Now = Clock::now();
    if (Done != Total && secondsBetween(LastPrint, Now) < 2.0)
      return;
    LastPrint = Now;
    double Elapsed = secondsBetween(Start, Now);
    double Eta =
        static_cast<double>(Total - Done) * Elapsed / static_cast<double>(Done);
    if (Mode == ProgressMode::Text) {
      std::fprintf(stderr,
                   "[bor-bench] %s: %zu/%zu cells, %.1fs elapsed, ETA %.1fs\n",
                   Name.c_str(), Done, Total, Elapsed, Eta);
      return;
    }
    // Jsonl: one self-contained object per tick, consumable line by line
    // (the future service mode streams exactly this to clients).
    JsonObjectWriter W;
    W.field("experiment", Name);
    W.fieldRaw("cells_done", jsonNumber(static_cast<uint64_t>(Done)));
    W.fieldRaw("cells_total", jsonNumber(static_cast<uint64_t>(Total)));
    W.fieldRaw("elapsed_s", jsonNumber(Elapsed));
    W.fieldRaw("eta_s", jsonNumber(Eta));
    std::fprintf(stderr, "%s\n", W.finish().c_str());
  }

private:
  using Clock = std::chrono::steady_clock;

  static double secondsBetween(Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double>(B - A).count();
  }

  const ProgressMode Mode;
  const std::string Name;
  const size_t Total;
  const Clock::time_point Start;
  std::mutex Mutex;
  Clock::time_point LastPrint;
  size_t Done = 0;
};

/// The explicit stand-in record for a cell that never produced a result:
/// its grid coordinates survive (so rows still line up downstream), and
/// cell_status/attempts say what happened instead of metrics.
RunRecord makeMarkerRecord(const ExperimentSpec &Spec, size_t Index,
                           const CellOutcome &Outcome) {
  RunRecord R;
  R.Params = Spec.Cells[Index];
  R.metric("cell_status", std::string(Outcome.S == CellOutcome::State::TimedOut
                                          ? "timeout"
                                          : "lost"));
  R.metric("attempts", static_cast<uint64_t>(Outcome.Attempts));
  return R;
}

} // namespace

GridResult runExperimentWith(const ExperimentSpec &Spec,
                             CellExecutor &Executor,
                             const std::vector<ResultSink *> &Sinks,
                             const RunnerHooks &Hooks) {
  assert(Spec.Run && "experiment has no run functor");
  telemetry::TraceWriter *TW =
      Hooks.Telemetry ? Hooks.Telemetry->Trace : nullptr;

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Experiments("exp.experiments");
    static const telemetry::Counter Cells("exp.cells");
    Experiments.add();
    Cells.add(Spec.Cells.size());
  }

  if (Spec.Setup) {
    telemetry::TraceSpan Span(TW, "setup", "experiment",
                              {telemetry::TraceArg::str("experiment",
                                                        Spec.Name)});
    telemetry::TimeSeries::Scope Tag(Spec.Name,
                                     telemetry::TimeSeries::kSetupCell);
    Spec.Setup();
  }

  Heartbeat HB(Hooks.Progress, Spec.Name, Spec.Cells.size());
  auto RunCell = [&Spec, TW](size_t I) {
    telemetry::TraceSpan Span(
        TW, "cell", "experiment",
        {telemetry::TraceArg::str("experiment", Spec.Name),
         telemetry::TraceArg::num("index", static_cast<uint64_t>(I))});
    // Tag any sampled run inside this cell for the time-series sink; the
    // cell index (not the worker thread) keys the series, which is what
    // keeps timeseries.json thread-count-invariant.
    telemetry::TimeSeries::Scope Tag(Spec.Name, static_cast<int64_t>(I));
    RunRecord R = Spec.Run(Spec.Cells[I], I);
    Span.close();
    return R;
  };
  auto OnCellDone = [&HB](size_t) { HB.cellDone(); };

  GridResult Out;
  Out.Records.resize(Spec.Cells.size());
  Out.Outcomes = Executor.execute(Spec, Out.Records, RunCell, OnCellDone);
  assert(Out.Outcomes.size() == Spec.Cells.size() &&
         "executor must report one outcome per cell");

  for (size_t I = 0; I != Out.Outcomes.size(); ++I) {
    const CellOutcome &O = Out.Outcomes[I];
    if (O.S == CellOutcome::State::Done)
      continue;
    Out.Partial = true;
    if (O.S == CellOutcome::State::TimedOut)
      ++Out.CellsTimedOut;
    else
      ++Out.CellsLost;
    Out.Records[I] = makeMarkerRecord(Spec, I, O);
  }

  // A summary over an incomplete grid would average holes into lies;
  // partial runs ship the per-cell truth (markers included) and nothing
  // derived.
  std::vector<RunRecord> Summaries;
  if (Spec.Summarize && !Out.Partial) {
    telemetry::TraceSpan Span(TW, "summarize", "experiment",
                              {telemetry::TraceArg::str("experiment",
                                                        Spec.Name)});
    telemetry::TimeSeries::Scope Tag(Spec.Name,
                                     telemetry::TimeSeries::kSummarizeCell);
    Summaries = Spec.Summarize(Out.Records);
  } else if (Spec.Summarize && Out.Partial) {
    std::fprintf(stderr,
                 "[bor-bench] %s: %zu/%zu cells missing "
                 "(%zu timed out, %zu lost); skipping summary stage\n",
                 Spec.Name.c_str(), Out.CellsTimedOut + Out.CellsLost,
                 Spec.Cells.size(), Out.CellsTimedOut, Out.CellsLost);
  }

  for (ResultSink *Sink : Sinks)
    Sink->begin(Spec);
  for (const RunRecord &R : Out.Records)
    for (ResultSink *Sink : Sinks)
      Sink->record(R, /*IsSummary=*/false);
  for (const RunRecord &R : Summaries)
    for (ResultSink *Sink : Sinks)
      Sink->record(R, /*IsSummary=*/true);
  for (ResultSink *Sink : Sinks)
    Sink->end();

  return Out;
}

std::vector<RunRecord> runExperiment(const ExperimentSpec &Spec,
                                     unsigned Threads,
                                     const std::vector<ResultSink *> &Sinks,
                                     const RunnerHooks &Hooks) {
  LocalExecutor Executor(Threads);
  return runExperimentWith(Spec, Executor, Sinks, Hooks).Records;
}

} // namespace exp
} // namespace bor
