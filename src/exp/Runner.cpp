//===- exp/Runner.cpp - Parallel, deterministic experiment execution -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Runner.h"

#include "exp/ThreadPool.h"

#include <cassert>

namespace bor {
namespace exp {

std::vector<RunRecord> runExperiment(const ExperimentSpec &Spec,
                                     unsigned Threads,
                                     const std::vector<ResultSink *> &Sinks) {
  assert(Spec.Run && "experiment has no run functor");
  if (Spec.Setup)
    Spec.Setup();

  std::vector<RunRecord> Results(Spec.Cells.size());
  if (Threads <= 1 || Spec.Cells.size() <= 1) {
    for (size_t I = 0; I != Spec.Cells.size(); ++I)
      Results[I] = Spec.Run(Spec.Cells[I], I);
  } else {
    ThreadPool Pool(Threads);
    for (size_t I = 0; I != Spec.Cells.size(); ++I)
      Pool.submit([&Spec, &Results, I] {
        Results[I] = Spec.Run(Spec.Cells[I], I);
      });
    Pool.wait();
  }

  std::vector<RunRecord> Summaries;
  if (Spec.Summarize)
    Summaries = Spec.Summarize(Results);

  for (ResultSink *Sink : Sinks)
    Sink->begin(Spec);
  for (const RunRecord &R : Results)
    for (ResultSink *Sink : Sinks)
      Sink->record(R, /*IsSummary=*/false);
  for (const RunRecord &R : Summaries)
    for (ResultSink *Sink : Sinks)
      Sink->record(R, /*IsSummary=*/true);
  for (ResultSink *Sink : Sinks)
    Sink->end();

  return Results;
}

} // namespace exp
} // namespace bor
