//===- exp/Experiments.h - The paper's registered experiments ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration entry point for the paper's evaluation experiments
/// (Figures 2/9/10/12/13/14, the design ablation and the Section 4.2
/// sensitivity sweep). Call registerAllExperiments() once at startup --
/// bor-bench and the thin per-figure wrapper binaries both do -- then
/// drive any experiment through the ExperimentRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_EXPERIMENTS_H
#define BOR_EXP_EXPERIMENTS_H

namespace bor {
namespace exp {

/// Registers every paper experiment with ExperimentRegistry::instance().
/// Idempotent.
void registerAllExperiments();

} // namespace exp
} // namespace bor

#endif // BOR_EXP_EXPERIMENTS_H
