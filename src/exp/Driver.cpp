//===- exp/Driver.cpp - Command-line driver for registered experiments ---===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

#include "ckpt/LibraryPool.h"
#include "exp/Experiments.h"
#include "exp/Manifest.h"
#include "exp/Runner.h"
#include "exp/ThreadPool.h"
#include "support/Path.h"
#include "support/Socket.h"
#include "svc/Coordinator.h"
#include "svc/FaultSpec.h"
#include "svc/Protocol.h"
#include "svc/Worker.h"
#include "telemetry/CounterInfo.h"
#include "telemetry/Counters.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TimeSeries.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

namespace bor {
namespace exp {

namespace {

struct DriverOptions {
  bool List = false;
  bool All = false;
  std::vector<std::string> Experiments;
  unsigned Threads = ThreadPool::defaultThreads();
  uint64_t Scale = 1;
  std::string JsonPath; ///< empty = default BENCH_<name>.json
  bool Json = true;
  bool TableOut = true;
  bool Sample = false;
  SamplingPlan Plan;
  std::string TracePath;      ///< --trace: Chrome trace-event JSON output
  std::string FlamegraphPath; ///< --flamegraph: collapsed-stack summary
  bool Counters = false;      ///< --counters: render the snapshot to stdout
  std::string CountersOut;    ///< --counters-out: write the snapshot here
  bool CkptLibrary = false;   ///< --ckpt-library: COW-library fast-forward
  std::string CkptDir;        ///< --ckpt-dir: persist libraries here
  unsigned CkptRegions = 0;   ///< --ckpt-regions: BBV representative phases
  std::string RunDir;         ///< --run-dir: write a self-describing manifest
  std::string Progress;       ///< --progress: auto|off|text|jsonl
  bool ListCounters = false;  ///< --list-counters: print the description table
  bool UpdateBaselines = false; ///< --update-baselines: refresh bench/ JSON
  std::string BaselineDir = "bench"; ///< --baseline-dir: where baselines live

  // Distributed sweep service (docs/SERVICE.md).
  std::string Serve;          ///< --serve ADDR: run the coordinator here
  std::string WorkerAddr;     ///< --worker ADDR: run the worker loop
  int WorkerId = 0;           ///< --worker-id: names the worker, keys faults
  unsigned SpawnWorkers = 0;  ///< --spawn-workers: fork N workers
  int MaxWorkerRestarts = -1; ///< --max-worker-restarts (-1 = 2 * spawn)
  std::string FaultSpecText;  ///< --fault-spec: deterministic fault injection
  double CellTimeoutS = 0;    ///< --cell-timeout: per-cell wall-clock budget
  double LeaseHeartbeatS = 2.0; ///< --lease-heartbeat: heartbeat interval
  unsigned RetryBudget = 3;   ///< --retry-budget: attempts per cell
  std::string AddrFile;       ///< --addr-file: publish the bound address
};

/// Exit status of a run that completed with cells explicitly missing
/// (lost to worker failures or timed out) — degraded, not failed.
constexpr int PartialResultExit = 3;

/// Accepts both "--flag value" and "--flag=value". Returns nullptr when
/// \p Arg does not start with \p Flag; advances \p I past a detached
/// value.
const char *flagValue(const char *Flag, char **Argv, int Argc, int &I) {
  const char *A = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(A, Flag, Len) != 0)
    return nullptr;
  if (A[Len] == '=')
    return A + Len + 1;
  if (A[Len] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

/// Strict unsigned parse: the whole string must be a number. Returns false
/// (leaving \p Out untouched) on empty input, trailing garbage, or
/// overflow — the callers turn that into a usage error naming the flag,
/// rather than silently running with a misread value.
bool parseU64(const char *V, uint64_t &Out) {
  if (!V || *V == '\0')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(V, &End, 0);
  if (errno == ERANGE || End == V || *End != '\0')
    return false;
  Out = Parsed;
  return true;
}

/// Strict non-negative double parse, same contract as parseU64.
bool parseF64(const char *V, double &Out) {
  if (!V || *V == '\0')
    return false;
  errno = 0;
  char *End = nullptr;
  double Parsed = std::strtod(V, &End);
  if (errno == ERANGE || End == V || *End != '\0' || Parsed < 0)
    return false;
  Out = Parsed;
  return true;
}

/// Shared flags of bor-bench and the per-figure wrappers. Returns false
/// when \p A is not recognized; a recognized flag with a bad value prints
/// a diagnostic and exits non-zero rather than running with defaults.
bool parseCommon(const char *A, char **Argv, int Argc, int &I,
                 DriverOptions &Opt) {
  if (const char *V = flagValue("--threads", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0 || N > 4096) {
      std::fprintf(stderr,
                   "bor-bench: --threads needs a whole number >= 1, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Threads = static_cast<unsigned>(N);
    return true;
  }
  if (const char *V = flagValue("--scale", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0) {
      std::fprintf(stderr,
                   "bor-bench: --scale needs a whole number >= 1, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Scale = N;
    return true;
  }
  if (const char *V = flagValue("--json", Argv, Argc, I)) {
    Opt.JsonPath = V;
    return true;
  }
  if (std::strcmp(A, "--no-json") == 0) {
    Opt.Json = false;
    return true;
  }
  if (std::strcmp(A, "--no-table") == 0) {
    Opt.TableOut = false;
    return true;
  }
  if (std::strcmp(A, "--sample") == 0) {
    Opt.Sample = true;
    return true;
  }
  if (const char *V = flagValue("--sample-period", Argv, Argc, I)) {
    if (!parseU64(V, Opt.Plan.PeriodInsts) || Opt.Plan.PeriodInsts == 0) {
      std::fprintf(stderr,
                   "bor-bench: --sample-period needs a whole number >= 1, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Sample = true;
    return true;
  }
  if (const char *V = flagValue("--sample-warm", Argv, Argc, I)) {
    if (!parseU64(V, Opt.Plan.WarmupInsts)) {
      std::fprintf(stderr,
                   "bor-bench: --sample-warm needs a whole number, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Sample = true;
    return true;
  }
  if (const char *V = flagValue("--sample-measure", Argv, Argc, I)) {
    if (!parseU64(V, Opt.Plan.MeasureInsts) || Opt.Plan.MeasureInsts == 0) {
      std::fprintf(stderr,
                   "bor-bench: --sample-measure needs a whole number >= 1, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Sample = true;
    return true;
  }
  if (std::strcmp(A, "--ckpt-library") == 0) {
    Opt.CkptLibrary = true;
    return true;
  }
  if (const char *V = flagValue("--ckpt-dir", Argv, Argc, I)) {
    if (*V == '\0') {
      std::fprintf(stderr, "bor-bench: --ckpt-dir needs a directory path\n");
      std::exit(2);
    }
    Opt.CkptDir = V;
    Opt.CkptLibrary = true;
    return true;
  }
  if (const char *V = flagValue("--ckpt-regions", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0 || N > 1u << 20) {
      std::fprintf(stderr,
                   "bor-bench: --ckpt-regions needs a whole number >= 1, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.CkptRegions = static_cast<unsigned>(N);
    Opt.CkptLibrary = true;
    return true;
  }
  if (const char *V = flagValue("--trace", Argv, Argc, I)) {
    Opt.TracePath = V;
    return true;
  }
  if (const char *V = flagValue("--flamegraph", Argv, Argc, I)) {
    Opt.FlamegraphPath = V;
    return true;
  }
  if (std::strcmp(A, "--counters") == 0) {
    Opt.Counters = true;
    return true;
  }
  if (const char *V = flagValue("--counters-out", Argv, Argc, I)) {
    Opt.CountersOut = V;
    return true;
  }
  if (const char *V = flagValue("--run-dir", Argv, Argc, I)) {
    if (*V == '\0') {
      std::fprintf(stderr, "bor-bench: --run-dir needs a directory path\n");
      std::exit(2);
    }
    Opt.RunDir = V;
    return true;
  }
  if (const char *V = flagValue("--progress", Argv, Argc, I)) {
    if (std::strcmp(V, "auto") != 0 && std::strcmp(V, "off") != 0 &&
        std::strcmp(V, "text") != 0 && std::strcmp(V, "jsonl") != 0) {
      std::fprintf(stderr,
                   "bor-bench: --progress must be auto, off, text or "
                   "jsonl, got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Progress = V;
    return true;
  }
  if (const char *V = flagValue("--serve", Argv, Argc, I)) {
    Opt.Serve = V;
    return true;
  }
  if (const char *V = flagValue("--worker-id", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N > 1u << 20) {
      std::fprintf(stderr,
                   "bor-bench: --worker-id needs a small whole number, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.WorkerId = static_cast<int>(N);
    return true;
  }
  if (const char *V = flagValue("--worker", Argv, Argc, I)) {
    Opt.WorkerAddr = V;
    return true;
  }
  if (const char *V = flagValue("--spawn-workers", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0 || N > 256) {
      std::fprintf(stderr,
                   "bor-bench: --spawn-workers needs a whole number in "
                   "1..256, got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.SpawnWorkers = static_cast<unsigned>(N);
    return true;
  }
  if (const char *V = flagValue("--max-worker-restarts", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N > 1u << 16) {
      std::fprintf(stderr,
                   "bor-bench: --max-worker-restarts needs a whole number, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.MaxWorkerRestarts = static_cast<int>(N);
    return true;
  }
  if (const char *V = flagValue("--fault-spec", Argv, Argc, I)) {
    Opt.FaultSpecText = V;
    return true;
  }
  if (const char *V = flagValue("--cell-timeout", Argv, Argc, I)) {
    if (!parseF64(V, Opt.CellTimeoutS) || Opt.CellTimeoutS <= 0) {
      std::fprintf(stderr,
                   "bor-bench: --cell-timeout needs seconds > 0, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    return true;
  }
  if (const char *V = flagValue("--lease-heartbeat", Argv, Argc, I)) {
    if (!parseF64(V, Opt.LeaseHeartbeatS) || Opt.LeaseHeartbeatS <= 0) {
      std::fprintf(stderr,
                   "bor-bench: --lease-heartbeat needs seconds > 0, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    return true;
  }
  if (const char *V = flagValue("--retry-budget", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0 || N > 1000) {
      std::fprintf(stderr,
                   "bor-bench: --retry-budget needs a whole number in "
                   "1..1000, got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.RetryBudget = static_cast<unsigned>(N);
    return true;
  }
  if (const char *V = flagValue("--addr-file", Argv, Argc, I)) {
    if (*V == '\0') {
      std::fprintf(stderr, "bor-bench: --addr-file needs a file path\n");
      std::exit(2);
    }
    Opt.AddrFile = V;
    return true;
  }
  if (std::strcmp(A, "--update-baselines") == 0) {
    Opt.UpdateBaselines = true;
    return true;
  }
  if (const char *V = flagValue("--baseline-dir", Argv, Argc, I)) {
    if (*V == '\0') {
      std::fprintf(stderr,
                   "bor-bench: --baseline-dir needs a directory path\n");
      std::exit(2);
    }
    Opt.BaselineDir = V;
    Opt.UpdateBaselines = true;
    return true;
  }
  return false;
}

/// Resolves the progress mode: the --progress flag wins; otherwise the
/// BOR_HEARTBEAT environment knob ("json" selects the machine-readable
/// stream, any other non-zero value the human line, 0/empty forces off);
/// otherwise text only when a human is watching stderr.
ProgressMode progressMode(const DriverOptions &Opt) {
  auto Auto = [] {
    return isatty(fileno(stderr)) != 0 ? ProgressMode::Text
                                       : ProgressMode::Off;
  };
  if (!Opt.Progress.empty()) {
    if (Opt.Progress == "off")
      return ProgressMode::Off;
    if (Opt.Progress == "text")
      return ProgressMode::Text;
    if (Opt.Progress == "jsonl")
      return ProgressMode::Jsonl;
    return Auto(); // "auto"
  }
  if (const char *Env = std::getenv("BOR_HEARTBEAT")) {
    if (std::strcmp(Env, "json") == 0 || std::strcmp(Env, "jsonl") == 0)
      return ProgressMode::Jsonl;
    return Env[0] != '\0' && Env[0] != '0' ? ProgressMode::Text
                                           : ProgressMode::Off;
  }
  return Auto();
}

/// Writes \p Text to \p Path atomically (temp file + rename), creating
/// missing parent directories; a failure names the path on stderr.
/// Returns 0 on success.
int writeOutputFile(const std::string &Path, const std::string &Text) {
  std::string Err;
  if (!writeFileAtomic(Path, Text, Err)) {
    std::fprintf(stderr, "bor-bench: %s\n", Err.c_str());
    return 1;
  }
  return 0;
}

/// Finalizes telemetry once every requested experiment has run: the trace
/// file, the counter snapshot to stdout and/or a file, and the run dir's
/// counters.json / timeseries.json / manifest.json. Returns 0 on success.
int writeTelemetryOutputs(const DriverOptions &Opt,
                          telemetry::TraceWriter *Trace,
                          telemetry::TimeSeries *Series,
                          ManifestInfo *Manifest) {
  if (Trace && !Opt.TracePath.empty()) {
    std::string Err;
    if (!Trace->writeTo(Opt.TracePath, Err)) {
      std::fprintf(stderr, "bor-bench: --trace: %s\n", Err.c_str());
      return 1;
    }
  }
  if (Trace && !Opt.FlamegraphPath.empty())
    if (int RC = writeOutputFile(Opt.FlamegraphPath,
                                 Trace->foldToCollapsedStacks()))
      return RC;

  if (Opt.Counters || !Opt.CountersOut.empty()) {
    std::string Rendered =
        telemetry::CounterRegistry::instance().snapshot().render();
    if (Opt.Counters)
      std::fputs(Rendered.c_str(), stdout);
    if (!Opt.CountersOut.empty())
      if (int RC = writeOutputFile(Opt.CountersOut, Rendered))
        return RC;
  }

  if (Opt.RunDir.empty())
    return 0;

  // The run manifest: counters.json always (the run forced counting on),
  // timeseries.json when any sampled run recorded, manifest.json last so
  // a complete manifest implies complete files.
  Manifest->CountersFile = "counters.json";
  if (int RC = writeOutputFile(
          joinPath(Opt.RunDir, Manifest->CountersFile),
          telemetry::CounterRegistry::instance().snapshot().renderJson()))
    return RC;
  if (Series && Series->numSeries() != 0) {
    Manifest->TimeSeriesFile = "timeseries.json";
    std::string Err;
    if (!Series->writeTo(joinPath(Opt.RunDir, Manifest->TimeSeriesFile),
                         Err)) {
      std::fprintf(stderr, "bor-bench: %s\n", Err.c_str());
      return 1;
    }
  }
  Manifest->TraceFile = Opt.TracePath;
  std::string Err;
  if (!writeManifest(Opt.RunDir, *Manifest, Err)) {
    std::fprintf(stderr, "bor-bench: %s\n", Err.c_str());
    return 1;
  }
  return 0;
}

/// Validates the assembled sampling plan once flags are parsed.
int checkPlan(const DriverOptions &Opt) {
  if (Opt.CkptLibrary && !Opt.Sample) {
    std::fprintf(stderr,
                 "bor-bench: --ckpt-library/--ckpt-dir/--ckpt-regions only "
                 "apply to sampled runs; add --sample\n");
    return 2;
  }
  if (!Opt.Sample || Opt.Plan.valid())
    return 0;
  std::fprintf(stderr,
               "bor-bench: invalid sampling plan: warm (%llu) + measure "
               "(%llu) + pre-roll (%llu) must fit in the period (%llu)\n",
               static_cast<unsigned long long>(Opt.Plan.WarmupInsts),
               static_cast<unsigned long long>(Opt.Plan.MeasureInsts),
               static_cast<unsigned long long>(Opt.Plan.DetailedWarmupInsts),
               static_cast<unsigned long long>(Opt.Plan.PeriodInsts));
  return 2;
}

void printRegisteredExperiments(std::FILE *Out) {
  for (const auto &[Name, Description] :
       ExperimentRegistry::instance().list())
    std::fprintf(Out, "  %-12s %s\n", Name.c_str(), Description.c_str());
}

/// Where one experiment's JSON-lines results go: the run dir, the
/// baseline dir, an explicit --json path, or the default BENCH file.
std::string jsonPathFor(const std::string &Name, const DriverOptions &Opt) {
  if (!Opt.RunDir.empty())
    return joinPath(Opt.RunDir, Name + ".json");
  if (Opt.UpdateBaselines)
    return joinPath(Opt.BaselineDir, "BENCH_" + Name + ".json");
  return Opt.JsonPath.empty() ? "BENCH_" + Name + ".json" : Opt.JsonPath;
}

/// Runs one registered experiment with the configured sinks on
/// \p Executor (null = a fresh in-process LocalExecutor). Returns 0 on
/// success; a partial grid is reported through \p Partial, not the return
/// code, so later experiments still run. \p Manifest (optional) records
/// the experiment, its result file, and degradation counts.
int runOne(const std::string &Name, const DriverOptions &Opt,
           const telemetry::TelemetrySink *Telemetry,
           ckpt::LibraryPool *CkptPool, ManifestInfo *Manifest,
           CellExecutor *Executor, bool &Partial) {
  ExperimentRegistry &Registry = ExperimentRegistry::instance();
  if (!Registry.contains(Name)) {
    std::fprintf(stderr,
                 "unknown experiment '%s'; registered experiments:\n",
                 Name.c_str());
    printRegisteredExperiments(stderr);
    return 2;
  }

  ExperimentOptions ExpOpt;
  ExpOpt.Scale = Opt.Scale;
  ExpOpt.Sample = Opt.Sample;
  ExpOpt.Plan = Opt.Plan;
  ExpOpt.Telemetry = Telemetry;
  ExpOpt.CkptPool = CkptPool;
  ExpOpt.CkptRegions = Opt.CkptRegions;
  ExperimentSpec Spec = Registry.create(Name, ExpOpt);

  std::vector<ResultSink *> Sinks;
  TableSink Table(stdout);
  if (Opt.TableOut)
    Sinks.push_back(&Table);
  std::unique_ptr<JsonLinesSink> Json;
  if (Opt.Json) {
    std::string Path = jsonPathFor(Name, Opt);
    Json = JsonLinesSink::open(Path);
    if (!Json)
      return 1;
    Sinks.push_back(Json.get());
    if (Manifest)
      Manifest->ResultFiles.emplace_back(Name, Name + ".json");
  }
  if (Manifest)
    Manifest->Experiments.push_back(Name);

  RunnerHooks Hooks;
  Hooks.Telemetry = Telemetry;
  Hooks.Progress = progressMode(Opt);
  telemetry::TraceSpan Span(Telemetry ? Telemetry->Trace : nullptr, Name,
                            "experiment");
  LocalExecutor Local(Opt.Threads, Opt.CellTimeoutS);
  GridResult Grid =
      runExperimentWith(Spec, Executor ? *Executor : Local, Sinks, Hooks);
  if (Grid.Partial) {
    Partial = true;
    if (Manifest) {
      Manifest->CellsLost += Grid.CellsLost;
      Manifest->CellsTimedOut += Grid.CellsTimedOut;
    }
  }
  return 0;
}

/// Builds the sink the --trace/--counters flags ask for. The returned
/// writer is null when tracing is off; counters are switched on globally
/// (a run manifest always snapshots them).
std::unique_ptr<telemetry::TraceWriter>
setUpTelemetry(const DriverOptions &Opt) {
  if (Opt.Counters || !Opt.CountersOut.empty() || !Opt.RunDir.empty())
    telemetry::CounterRegistry::setEnabled(true);
  if (Opt.TracePath.empty() && Opt.FlamegraphPath.empty())
    return nullptr;
  return std::make_unique<telemetry::TraceWriter>();
}

/// Space-joined argv for the manifest's command field.
std::string commandLine(int Argc, char **Argv) {
  std::string Cmd;
  for (int I = 0; I < Argc; ++I) {
    if (I)
      Cmd += " ";
    Cmd += Argv[I];
  }
  return Cmd;
}

/// Service-mode flag validation shared by benchMain and the wrappers.
int checkServiceFlags(const DriverOptions &Opt) {
  if (!Opt.Serve.empty() && !Opt.WorkerAddr.empty()) {
    std::fprintf(stderr,
                 "bor-bench: --serve and --worker are opposite roles; pick "
                 "one\n");
    return 2;
  }
  if (!Opt.Serve.empty() && Opt.CkptLibrary) {
    std::fprintf(stderr,
                 "bor-bench: --serve cannot use --ckpt-library (the "
                 "checkpoint pool is process-local; workers would each "
                 "rebuild it)\n");
    return 2;
  }
  if (!Opt.FaultSpecText.empty() && Opt.WorkerAddr.empty() &&
      Opt.SpawnWorkers == 0) {
    std::fprintf(stderr,
                 "bor-bench: --fault-spec only applies to workers; use it "
                 "with --worker or --spawn-workers\n");
    return 2;
  }
  if (Opt.SpawnWorkers != 0 && Opt.Serve.empty()) {
    std::fprintf(stderr, "bor-bench: --spawn-workers requires --serve\n");
    return 2;
  }
  if (!Opt.AddrFile.empty() && Opt.Serve.empty()) {
    std::fprintf(stderr, "bor-bench: --addr-file requires --serve\n");
    return 2;
  }
  if (!Opt.FaultSpecText.empty()) {
    svc::FaultSpec Spec;
    std::string Err;
    if (!svc::FaultSpec::parse(Opt.FaultSpecText, Spec, Err)) {
      std::fprintf(stderr, "bor-bench: --fault-spec: %s\n", Err.c_str());
      return 2;
    }
  }
  return 0;
}

/// The --worker mode: connect to the coordinator and execute leases until
/// told to shut down. Ignores every output flag — results travel the
/// wire, not this process's stdout.
int runWorkerMode(const DriverOptions &Opt) {
  svc::WorkerConfig WC;
  std::string Err;
  if (!net::parseHostPort(Opt.WorkerAddr, WC.Host, WC.Port, Err)) {
    std::fprintf(stderr, "bor-bench: --worker: %s\n", Err.c_str());
    return 2;
  }
  WC.WorkerId = Opt.WorkerId;
  if (!Opt.FaultSpecText.empty()) {
    svc::FaultSpec Spec;
    if (!svc::FaultSpec::parse(Opt.FaultSpecText, Spec, Err)) {
      std::fprintf(stderr, "bor-bench: --fault-spec: %s\n", Err.c_str());
      return 2;
    }
    WC.Faults = svc::planForWorker(Spec, Opt.WorkerId);
  }
  return svc::runWorker(WC);
}

/// Flag-conflict checks shared by benchMain and the per-figure wrappers.
int checkOutputFlags(const DriverOptions &Opt) {
  if (!Opt.RunDir.empty() && Opt.UpdateBaselines) {
    std::fprintf(stderr,
                 "bor-bench: --run-dir and --update-baselines both redirect "
                 "the result JSON; pick one\n");
    return 2;
  }
  if (!Opt.JsonPath.empty() &&
      (!Opt.RunDir.empty() || Opt.UpdateBaselines)) {
    std::fprintf(stderr,
                 "bor-bench: --json PATH conflicts with "
                 "--run-dir/--update-baselines (they name the JSON file "
                 "themselves)\n");
    return 2;
  }
  if (!Opt.Json && (!Opt.RunDir.empty() || Opt.UpdateBaselines)) {
    std::fprintf(stderr,
                 "bor-bench: --no-json defeats --run-dir/--update-baselines "
                 "(nothing would be recorded)\n");
    return 2;
  }
  return 0;
}

/// One experiment loop shared by benchMain and the wrappers: telemetry
/// setup, the runs, and output finalization (including the run manifest).
int runAll(const std::vector<std::string> &Experiments,
           const DriverOptions &Opt, const std::string &Tool,
           const std::string &Command) {
  std::unique_ptr<telemetry::TraceWriter> Trace = setUpTelemetry(Opt);
  std::unique_ptr<telemetry::TimeSeries> Series;
  if (!Opt.RunDir.empty())
    Series = std::make_unique<telemetry::TimeSeries>();

  telemetry::TelemetrySink Sink;
  Sink.Trace = Trace.get();
  Sink.Series = Series.get();
  const telemetry::TelemetrySink *SinkPtr =
      Trace || Series ? &Sink : nullptr;

  ManifestInfo Manifest;
  Manifest.Tool = Tool;
  Manifest.Command = Command;
  Manifest.Scale = Opt.Scale;
  Manifest.Threads = Opt.Threads;
  Manifest.Sample = Opt.Sample;
  Manifest.Plan = Opt.Plan;
  Manifest.CkptLibrary = Opt.CkptLibrary;
  Manifest.CkptRegions = Opt.CkptRegions;
  Manifest.Serve = !Opt.Serve.empty();
  Manifest.SpawnWorkers = Opt.SpawnWorkers;

  // One pool for the whole invocation: experiments sharing a (program,
  // decider, period) key build its library exactly once.
  std::unique_ptr<ckpt::LibraryPool> Pool;
  if (Opt.CkptLibrary)
    Pool = std::make_unique<ckpt::LibraryPool>(Opt.CkptDir);

  // Serve mode: bind the coordinator, spawn any requested workers, and
  // route every grid through it instead of the in-process pool. SIGTERM
  // becomes a graceful drain (finish in-flight cells, mark the rest).
  std::unique_ptr<svc::Coordinator> Coord;
  std::unique_ptr<svc::ServeExecutor> Serve;
  if (!Opt.Serve.empty()) {
    std::string Host, Err;
    int Port = 0;
    if (!net::parseHostPort(Opt.Serve, Host, Port, Err)) {
      std::fprintf(stderr, "bor-bench: --serve: %s\n", Err.c_str());
      return 2;
    }
    svc::CoordinatorConfig CC;
    CC.Host = Host;
    CC.Port = Port;
    CC.HeartbeatS = Opt.LeaseHeartbeatS;
    CC.CellTimeoutS = Opt.CellTimeoutS;
    CC.Backoff.Budget = Opt.RetryBudget;
    CC.SpawnWorkers = Opt.SpawnWorkers;
    CC.MaxWorkerRestarts = Opt.MaxWorkerRestarts;
    CC.FaultSpecText = Opt.FaultSpecText;
    CC.AddrFile = Opt.AddrFile;
    Coord = std::make_unique<svc::Coordinator>(CC);
    if (!Coord->ok()) {
      std::fprintf(stderr, "bor-bench: --serve: %s\n",
                   Coord->error().c_str());
      return 1;
    }
    ExperimentOptions LeaseOpt;
    LeaseOpt.Scale = Opt.Scale;
    LeaseOpt.Sample = Opt.Sample;
    LeaseOpt.Plan = Opt.Plan;
    Coord->setLeaseOptions(svc::encodeOptions(LeaseOpt));
    std::signal(SIGTERM, [](int) { svc::Coordinator::requestDrain(); });
    if (!Coord->spawnWorkers()) {
      std::fprintf(stderr, "bor-bench: --spawn-workers: %s\n",
                   Coord->error().c_str());
      return 1;
    }
    Serve = std::make_unique<svc::ServeExecutor>(*Coord);
  }

  bool Partial = false;
  for (size_t I = 0; I != Experiments.size(); ++I) {
    if (I)
      std::printf("\n");
    if (int RC = runOne(Experiments[I], Opt, SinkPtr, Pool.get(),
                        Opt.RunDir.empty() ? nullptr : &Manifest,
                        Serve.get(), Partial))
      return RC;
  }
  if (Coord)
    Coord->shutdown();
  if (int RC =
          writeTelemetryOutputs(Opt, Trace.get(), Series.get(), &Manifest))
    return RC;
  return Partial ? PartialResultExit : 0;
}

} // namespace

int benchMain(int Argc, char **Argv) {
  registerAllExperiments();
  DriverOptions Opt;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--list") == 0) {
      Opt.List = true;
    } else if (std::strcmp(A, "--list-counters") == 0) {
      Opt.ListCounters = true;
    } else if (std::strcmp(A, "--all") == 0) {
      Opt.All = true;
    } else if (const char *V = flagValue("--experiment", Argv, Argc, I)) {
      Opt.Experiments.push_back(V);
    } else if (!parseCommon(A, Argv, Argc, I, Opt)) {
      std::fprintf(stderr,
                   "usage: bor-bench --list | --list-counters\n"
                   "       bor-bench --experiment NAME [--threads N] "
                   "[--json PATH | --no-json]\n"
                   "                 [--no-table] [--scale N] [--sample]\n"
                   "                 [--sample-period N] [--sample-warm N] "
                   "[--sample-measure N]\n"
                   "                 [--ckpt-library] [--ckpt-dir DIR] "
                   "[--ckpt-regions N]\n"
                   "                 [--trace PATH] [--flamegraph PATH] "
                   "[--counters] [--counters-out PATH]\n"
                   "                 [--run-dir DIR] [--update-baselines] "
                   "[--baseline-dir DIR]\n"
                   "                 [--progress auto|off|text|jsonl] "
                   "[--cell-timeout SEC]\n"
                   "       bor-bench --all [same flags]\n"
                   "       bor-bench --serve ADDR [--spawn-workers N] "
                   "[--max-worker-restarts N]\n"
                   "                 [--lease-heartbeat SEC] [--retry-budget "
                   "N] [--addr-file PATH]\n"
                   "                 [--fault-spec SPEC] [grid flags as "
                   "above]\n"
                   "       bor-bench --worker ADDR [--worker-id N] "
                   "[--fault-spec SPEC]\n"
                   "exit status: 0 ok, 3 completed with missing cells "
                   "(see docs/SERVICE.md)\n");
      return 2;
    }
  }
  if (int RC = checkPlan(Opt))
    return RC;
  if (int RC = checkOutputFlags(Opt))
    return RC;
  if (int RC = checkServiceFlags(Opt))
    return RC;
  if (!Opt.WorkerAddr.empty())
    return runWorkerMode(Opt);

  ExperimentRegistry &Registry = ExperimentRegistry::instance();
  if (Opt.ListCounters) {
    std::fputs(telemetry::renderCounterList().c_str(), stdout);
    return 0;
  }
  if (Opt.List) {
    for (const auto &[Name, Description] : Registry.list())
      std::printf("%-12s %s\n", Name.c_str(), Description.c_str());
    return 0;
  }
  if (Opt.All) {
    for (const auto &[Name, Description] : Registry.list())
      Opt.Experiments.push_back(Name);
  }
  if (Opt.Experiments.empty()) {
    std::fprintf(stderr,
                 "bor-bench: nothing to do (--list, --experiment NAME or "
                 "--all)\n");
    return 2;
  }
  // An explicit --json path only makes sense for a single experiment.
  if (!Opt.JsonPath.empty() && Opt.Experiments.size() > 1) {
    std::fprintf(stderr,
                 "bor-bench: --json PATH with multiple experiments would "
                 "overwrite itself; drop it to get BENCH_<name>.json\n");
    return 2;
  }

  return runAll(Opt.Experiments, Opt, "bor-bench", commandLine(Argc, Argv));
}

int experimentMain(const char *Name, int Argc, char **Argv) {
  registerAllExperiments();
  DriverOptions Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!parseCommon(A, Argv, Argc, I, Opt)) {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--json PATH | --no-json] "
                   "[--no-table] [--scale N]\n"
                   "       [--sample] [--sample-period N] [--sample-warm N] "
                   "[--sample-measure N]\n"
                   "       [--ckpt-library] [--ckpt-dir DIR] "
                   "[--ckpt-regions N]\n"
                   "       [--trace PATH] [--flamegraph PATH] [--counters] "
                   "[--counters-out PATH]\n"
                   "       [--run-dir DIR] [--update-baselines] "
                   "[--baseline-dir DIR] [--progress MODE]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (int RC = checkPlan(Opt))
    return RC;
  if (int RC = checkOutputFlags(Opt))
    return RC;
  if (int RC = checkServiceFlags(Opt))
    return RC;
  if (!Opt.WorkerAddr.empty())
    return runWorkerMode(Opt);
  return runAll({Name}, Opt, Name, commandLine(Argc, Argv));
}

} // namespace exp
} // namespace bor
