//===- exp/Driver.cpp - Command-line driver for registered experiments ---===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

#include "exp/Experiments.h"
#include "exp/Runner.h"
#include "exp/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace bor {
namespace exp {

namespace {

struct DriverOptions {
  bool List = false;
  bool All = false;
  std::vector<std::string> Experiments;
  unsigned Threads = ThreadPool::defaultThreads();
  uint64_t Scale = 1;
  std::string JsonPath; ///< empty = default BENCH_<name>.json
  bool Json = true;
  bool TableOut = true;
};

/// Accepts both "--flag value" and "--flag=value". Returns nullptr when
/// \p Arg does not start with \p Flag; advances \p I past a detached
/// value.
const char *flagValue(const char *Flag, char **Argv, int Argc, int &I) {
  const char *A = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(A, Flag, Len) != 0)
    return nullptr;
  if (A[Len] == '=')
    return A + Len + 1;
  if (A[Len] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

bool parseCommon(const char *A, char **Argv, int Argc, int &I,
                 DriverOptions &Opt) {
  if (const char *V = flagValue("--threads", Argv, Argc, I)) {
    Opt.Threads = static_cast<unsigned>(std::strtoul(V, nullptr, 0));
    return true;
  }
  if (const char *V = flagValue("--scale", Argv, Argc, I)) {
    Opt.Scale = std::strtoull(V, nullptr, 0);
    if (Opt.Scale == 0)
      Opt.Scale = 1;
    return true;
  }
  if (const char *V = flagValue("--json", Argv, Argc, I)) {
    Opt.JsonPath = V;
    return true;
  }
  if (std::strcmp(A, "--no-json") == 0) {
    Opt.Json = false;
    return true;
  }
  if (std::strcmp(A, "--no-table") == 0) {
    Opt.TableOut = false;
    return true;
  }
  return false;
}

/// Runs one registered experiment with the configured sinks. Returns 0 on
/// success.
int runOne(const std::string &Name, const DriverOptions &Opt) {
  ExperimentRegistry &Registry = ExperimentRegistry::instance();
  if (!Registry.contains(Name)) {
    std::fprintf(stderr, "unknown experiment '%s' (try --list)\n",
                 Name.c_str());
    return 2;
  }

  ExperimentOptions ExpOpt;
  ExpOpt.Scale = Opt.Scale;
  ExperimentSpec Spec = Registry.create(Name, ExpOpt);

  std::vector<ResultSink *> Sinks;
  TableSink Table(stdout);
  if (Opt.TableOut)
    Sinks.push_back(&Table);
  std::unique_ptr<JsonLinesSink> Json;
  if (Opt.Json) {
    std::string Path =
        Opt.JsonPath.empty() ? "BENCH_" + Name + ".json" : Opt.JsonPath;
    Json = JsonLinesSink::open(Path);
    if (!Json)
      return 1;
    Sinks.push_back(Json.get());
  }

  runExperiment(Spec, Opt.Threads, Sinks);
  return 0;
}

} // namespace

int benchMain(int Argc, char **Argv) {
  registerAllExperiments();
  DriverOptions Opt;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--list") == 0) {
      Opt.List = true;
    } else if (std::strcmp(A, "--all") == 0) {
      Opt.All = true;
    } else if (const char *V = flagValue("--experiment", Argv, Argc, I)) {
      Opt.Experiments.push_back(V);
    } else if (!parseCommon(A, Argv, Argc, I, Opt)) {
      std::fprintf(stderr,
                   "usage: bor-bench --list\n"
                   "       bor-bench --experiment NAME [--threads N] "
                   "[--json PATH | --no-json]\n"
                   "                 [--no-table] [--scale N]\n"
                   "       bor-bench --all [same flags]\n");
      return 2;
    }
  }

  ExperimentRegistry &Registry = ExperimentRegistry::instance();
  if (Opt.List) {
    for (const auto &[Name, Description] : Registry.list())
      std::printf("%-12s %s\n", Name.c_str(), Description.c_str());
    return 0;
  }
  if (Opt.All) {
    for (const auto &[Name, Description] : Registry.list())
      Opt.Experiments.push_back(Name);
  }
  if (Opt.Experiments.empty()) {
    std::fprintf(stderr,
                 "bor-bench: nothing to do (--list, --experiment NAME or "
                 "--all)\n");
    return 2;
  }
  // An explicit --json path only makes sense for a single experiment.
  if (!Opt.JsonPath.empty() && Opt.Experiments.size() > 1) {
    std::fprintf(stderr,
                 "bor-bench: --json PATH with multiple experiments would "
                 "overwrite itself; drop it to get BENCH_<name>.json\n");
    return 2;
  }

  for (size_t I = 0; I != Opt.Experiments.size(); ++I) {
    if (I)
      std::printf("\n");
    if (int RC = runOne(Opt.Experiments[I], Opt))
      return RC;
  }
  return 0;
}

int experimentMain(const char *Name, int Argc, char **Argv) {
  registerAllExperiments();
  DriverOptions Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!parseCommon(A, Argv, Argc, I, Opt)) {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--json PATH | --no-json] "
                   "[--no-table] [--scale N]\n",
                   Argv[0]);
      return 2;
    }
  }
  return runOne(Name, Opt);
}

} // namespace exp
} // namespace bor
