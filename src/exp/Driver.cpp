//===- exp/Driver.cpp - Command-line driver for registered experiments ---===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

#include "ckpt/LibraryPool.h"
#include "exp/Experiments.h"
#include "exp/Runner.h"
#include "exp/ThreadPool.h"
#include "telemetry/Counters.h"
#include "telemetry/Telemetry.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

namespace bor {
namespace exp {

namespace {

struct DriverOptions {
  bool List = false;
  bool All = false;
  std::vector<std::string> Experiments;
  unsigned Threads = ThreadPool::defaultThreads();
  uint64_t Scale = 1;
  std::string JsonPath; ///< empty = default BENCH_<name>.json
  bool Json = true;
  bool TableOut = true;
  bool Sample = false;
  SamplingPlan Plan;
  std::string TracePath;      ///< --trace: Chrome trace-event JSON output
  std::string FlamegraphPath; ///< --flamegraph: collapsed-stack summary
  bool Counters = false;      ///< --counters: render the snapshot to stdout
  std::string CountersOut;    ///< --counters-out: write the snapshot here
  bool CkptLibrary = false;   ///< --ckpt-library: COW-library fast-forward
  std::string CkptDir;        ///< --ckpt-dir: persist libraries here
  unsigned CkptRegions = 0;   ///< --ckpt-regions: BBV representative phases
};

/// Accepts both "--flag value" and "--flag=value". Returns nullptr when
/// \p Arg does not start with \p Flag; advances \p I past a detached
/// value.
const char *flagValue(const char *Flag, char **Argv, int Argc, int &I) {
  const char *A = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(A, Flag, Len) != 0)
    return nullptr;
  if (A[Len] == '=')
    return A + Len + 1;
  if (A[Len] == '\0' && I + 1 < Argc)
    return Argv[++I];
  return nullptr;
}

/// Strict unsigned parse: the whole string must be a number. Returns false
/// (leaving \p Out untouched) on empty input, trailing garbage, or
/// overflow — the callers turn that into a usage error naming the flag,
/// rather than silently running with a misread value.
bool parseU64(const char *V, uint64_t &Out) {
  if (!V || *V == '\0')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(V, &End, 0);
  if (errno == ERANGE || End == V || *End != '\0')
    return false;
  Out = Parsed;
  return true;
}

/// Shared flags of bor-bench and the per-figure wrappers. Returns false
/// when \p A is not recognized; a recognized flag with a bad value prints
/// a diagnostic and exits non-zero rather than running with defaults.
bool parseCommon(const char *A, char **Argv, int Argc, int &I,
                 DriverOptions &Opt) {
  if (const char *V = flagValue("--threads", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0 || N > 4096) {
      std::fprintf(stderr,
                   "bor-bench: --threads needs a whole number >= 1, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Threads = static_cast<unsigned>(N);
    return true;
  }
  if (const char *V = flagValue("--scale", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0) {
      std::fprintf(stderr,
                   "bor-bench: --scale needs a whole number >= 1, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Scale = N;
    return true;
  }
  if (const char *V = flagValue("--json", Argv, Argc, I)) {
    Opt.JsonPath = V;
    return true;
  }
  if (std::strcmp(A, "--no-json") == 0) {
    Opt.Json = false;
    return true;
  }
  if (std::strcmp(A, "--no-table") == 0) {
    Opt.TableOut = false;
    return true;
  }
  if (std::strcmp(A, "--sample") == 0) {
    Opt.Sample = true;
    return true;
  }
  if (const char *V = flagValue("--sample-period", Argv, Argc, I)) {
    if (!parseU64(V, Opt.Plan.PeriodInsts) || Opt.Plan.PeriodInsts == 0) {
      std::fprintf(stderr,
                   "bor-bench: --sample-period needs a whole number >= 1, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Sample = true;
    return true;
  }
  if (const char *V = flagValue("--sample-warm", Argv, Argc, I)) {
    if (!parseU64(V, Opt.Plan.WarmupInsts)) {
      std::fprintf(stderr,
                   "bor-bench: --sample-warm needs a whole number, got "
                   "'%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Sample = true;
    return true;
  }
  if (const char *V = flagValue("--sample-measure", Argv, Argc, I)) {
    if (!parseU64(V, Opt.Plan.MeasureInsts) || Opt.Plan.MeasureInsts == 0) {
      std::fprintf(stderr,
                   "bor-bench: --sample-measure needs a whole number >= 1, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.Sample = true;
    return true;
  }
  if (std::strcmp(A, "--ckpt-library") == 0) {
    Opt.CkptLibrary = true;
    return true;
  }
  if (const char *V = flagValue("--ckpt-dir", Argv, Argc, I)) {
    if (*V == '\0') {
      std::fprintf(stderr, "bor-bench: --ckpt-dir needs a directory path\n");
      std::exit(2);
    }
    Opt.CkptDir = V;
    Opt.CkptLibrary = true;
    return true;
  }
  if (const char *V = flagValue("--ckpt-regions", Argv, Argc, I)) {
    uint64_t N = 0;
    if (!parseU64(V, N) || N == 0 || N > 1u << 20) {
      std::fprintf(stderr,
                   "bor-bench: --ckpt-regions needs a whole number >= 1, "
                   "got '%s'\n",
                   V);
      std::exit(2);
    }
    Opt.CkptRegions = static_cast<unsigned>(N);
    Opt.CkptLibrary = true;
    return true;
  }
  if (const char *V = flagValue("--trace", Argv, Argc, I)) {
    Opt.TracePath = V;
    return true;
  }
  if (const char *V = flagValue("--flamegraph", Argv, Argc, I)) {
    Opt.FlamegraphPath = V;
    return true;
  }
  if (std::strcmp(A, "--counters") == 0) {
    Opt.Counters = true;
    return true;
  }
  if (const char *V = flagValue("--counters-out", Argv, Argc, I)) {
    Opt.CountersOut = V;
    return true;
  }
  return false;
}

/// The heartbeat goes to stderr only when a human is watching it (or the
/// BOR_HEARTBEAT environment knob forces it on, which is how the tests
/// exercise it without a TTY).
bool heartbeatEnabled() {
  if (const char *Env = std::getenv("BOR_HEARTBEAT"))
    return Env[0] != '\0' && Env[0] != '0';
  return isatty(fileno(stderr)) != 0;
}

/// Finalizes telemetry once every requested experiment has run: the trace
/// file, the counter snapshot to stdout and/or a file. Returns 0 on
/// success.
int writeTelemetryOutputs(const DriverOptions &Opt,
                          telemetry::TraceWriter *Trace) {
  if (Trace && !Opt.TracePath.empty()) {
    std::string Err;
    if (!Trace->writeTo(Opt.TracePath, Err)) {
      std::fprintf(stderr, "bor-bench: --trace: %s\n", Err.c_str());
      return 1;
    }
  }
  if (Trace && !Opt.FlamegraphPath.empty()) {
    std::string Folded = Trace->foldToCollapsedStacks();
    std::FILE *F = std::fopen(Opt.FlamegraphPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "bor-bench: cannot open '%s' for writing\n",
                   Opt.FlamegraphPath.c_str());
      return 1;
    }
    std::fputs(Folded.c_str(), F);
    std::fclose(F);
  }
  if (!Opt.Counters && Opt.CountersOut.empty())
    return 0;
  std::string Rendered =
      telemetry::CounterRegistry::instance().snapshot().render();
  if (Opt.Counters)
    std::fputs(Rendered.c_str(), stdout);
  if (!Opt.CountersOut.empty()) {
    std::FILE *F = std::fopen(Opt.CountersOut.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "bor-bench: cannot open '%s' for writing\n",
                   Opt.CountersOut.c_str());
      return 1;
    }
    std::fputs(Rendered.c_str(), F);
    std::fclose(F);
  }
  return 0;
}

/// Validates the assembled sampling plan once flags are parsed.
int checkPlan(const DriverOptions &Opt) {
  if (Opt.CkptLibrary && !Opt.Sample) {
    std::fprintf(stderr,
                 "bor-bench: --ckpt-library/--ckpt-dir/--ckpt-regions only "
                 "apply to sampled runs; add --sample\n");
    return 2;
  }
  if (!Opt.Sample || Opt.Plan.valid())
    return 0;
  std::fprintf(stderr,
               "bor-bench: invalid sampling plan: warm (%llu) + measure "
               "(%llu) + pre-roll (%llu) must fit in the period (%llu)\n",
               static_cast<unsigned long long>(Opt.Plan.WarmupInsts),
               static_cast<unsigned long long>(Opt.Plan.MeasureInsts),
               static_cast<unsigned long long>(Opt.Plan.DetailedWarmupInsts),
               static_cast<unsigned long long>(Opt.Plan.PeriodInsts));
  return 2;
}

void printRegisteredExperiments(std::FILE *Out) {
  for (const auto &[Name, Description] :
       ExperimentRegistry::instance().list())
    std::fprintf(Out, "  %-12s %s\n", Name.c_str(), Description.c_str());
}

/// Runs one registered experiment with the configured sinks. Returns 0 on
/// success.
int runOne(const std::string &Name, const DriverOptions &Opt,
           const telemetry::TelemetrySink *Telemetry,
           ckpt::LibraryPool *CkptPool) {
  ExperimentRegistry &Registry = ExperimentRegistry::instance();
  if (!Registry.contains(Name)) {
    std::fprintf(stderr,
                 "unknown experiment '%s'; registered experiments:\n",
                 Name.c_str());
    printRegisteredExperiments(stderr);
    return 2;
  }

  ExperimentOptions ExpOpt;
  ExpOpt.Scale = Opt.Scale;
  ExpOpt.Sample = Opt.Sample;
  ExpOpt.Plan = Opt.Plan;
  ExpOpt.Telemetry = Telemetry;
  ExpOpt.CkptPool = CkptPool;
  ExpOpt.CkptRegions = Opt.CkptRegions;
  ExperimentSpec Spec = Registry.create(Name, ExpOpt);

  std::vector<ResultSink *> Sinks;
  TableSink Table(stdout);
  if (Opt.TableOut)
    Sinks.push_back(&Table);
  std::unique_ptr<JsonLinesSink> Json;
  if (Opt.Json) {
    std::string Path =
        Opt.JsonPath.empty() ? "BENCH_" + Name + ".json" : Opt.JsonPath;
    Json = JsonLinesSink::open(Path);
    if (!Json)
      return 1;
    Sinks.push_back(Json.get());
  }

  RunnerHooks Hooks;
  Hooks.Telemetry = Telemetry;
  Hooks.Heartbeat = heartbeatEnabled();
  telemetry::TraceSpan Span(Telemetry ? Telemetry->Trace : nullptr, Name,
                            "experiment");
  runExperiment(Spec, Opt.Threads, Sinks, Hooks);
  return 0;
}

/// Builds the sink the --trace/--counters flags ask for. The returned
/// writer is null when tracing is off; counters are switched on globally.
std::unique_ptr<telemetry::TraceWriter>
setUpTelemetry(const DriverOptions &Opt) {
  if (Opt.Counters || !Opt.CountersOut.empty())
    telemetry::CounterRegistry::setEnabled(true);
  if (Opt.TracePath.empty() && Opt.FlamegraphPath.empty())
    return nullptr;
  return std::make_unique<telemetry::TraceWriter>();
}

} // namespace

int benchMain(int Argc, char **Argv) {
  registerAllExperiments();
  DriverOptions Opt;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--list") == 0) {
      Opt.List = true;
    } else if (std::strcmp(A, "--all") == 0) {
      Opt.All = true;
    } else if (const char *V = flagValue("--experiment", Argv, Argc, I)) {
      Opt.Experiments.push_back(V);
    } else if (!parseCommon(A, Argv, Argc, I, Opt)) {
      std::fprintf(stderr,
                   "usage: bor-bench --list\n"
                   "       bor-bench --experiment NAME [--threads N] "
                   "[--json PATH | --no-json]\n"
                   "                 [--no-table] [--scale N] [--sample]\n"
                   "                 [--sample-period N] [--sample-warm N] "
                   "[--sample-measure N]\n"
                   "                 [--ckpt-library] [--ckpt-dir DIR] "
                   "[--ckpt-regions N]\n"
                   "                 [--trace PATH] [--flamegraph PATH] "
                   "[--counters] [--counters-out PATH]\n"
                   "       bor-bench --all [same flags]\n");
      return 2;
    }
  }
  if (int RC = checkPlan(Opt))
    return RC;

  ExperimentRegistry &Registry = ExperimentRegistry::instance();
  if (Opt.List) {
    for (const auto &[Name, Description] : Registry.list())
      std::printf("%-12s %s\n", Name.c_str(), Description.c_str());
    return 0;
  }
  if (Opt.All) {
    for (const auto &[Name, Description] : Registry.list())
      Opt.Experiments.push_back(Name);
  }
  if (Opt.Experiments.empty()) {
    std::fprintf(stderr,
                 "bor-bench: nothing to do (--list, --experiment NAME or "
                 "--all)\n");
    return 2;
  }
  // An explicit --json path only makes sense for a single experiment.
  if (!Opt.JsonPath.empty() && Opt.Experiments.size() > 1) {
    std::fprintf(stderr,
                 "bor-bench: --json PATH with multiple experiments would "
                 "overwrite itself; drop it to get BENCH_<name>.json\n");
    return 2;
  }

  std::unique_ptr<telemetry::TraceWriter> Trace = setUpTelemetry(Opt);
  telemetry::TelemetrySink Sink;
  Sink.Trace = Trace.get();

  // One pool for the whole invocation: experiments sharing a (program,
  // decider, period) key build its library exactly once.
  std::unique_ptr<ckpt::LibraryPool> Pool;
  if (Opt.CkptLibrary)
    Pool = std::make_unique<ckpt::LibraryPool>(Opt.CkptDir);

  for (size_t I = 0; I != Opt.Experiments.size(); ++I) {
    if (I)
      std::printf("\n");
    if (int RC = runOne(Opt.Experiments[I], Opt, Trace ? &Sink : nullptr,
                        Pool.get()))
      return RC;
  }
  return writeTelemetryOutputs(Opt, Trace.get());
}

int experimentMain(const char *Name, int Argc, char **Argv) {
  registerAllExperiments();
  DriverOptions Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!parseCommon(A, Argv, Argc, I, Opt)) {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--json PATH | --no-json] "
                   "[--no-table] [--scale N]\n"
                   "       [--sample] [--sample-period N] [--sample-warm N] "
                   "[--sample-measure N]\n"
                   "       [--ckpt-library] [--ckpt-dir DIR] "
                   "[--ckpt-regions N]\n"
                   "       [--trace PATH] [--flamegraph PATH] [--counters] "
                   "[--counters-out PATH]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (int RC = checkPlan(Opt))
    return RC;
  std::unique_ptr<telemetry::TraceWriter> Trace = setUpTelemetry(Opt);
  telemetry::TelemetrySink Sink;
  Sink.Trace = Trace.get();
  std::unique_ptr<ckpt::LibraryPool> Pool;
  if (Opt.CkptLibrary)
    Pool = std::make_unique<ckpt::LibraryPool>(Opt.CkptDir);
  if (int RC = runOne(Name, Opt, Trace ? &Sink : nullptr, Pool.get()))
    return RC;
  return writeTelemetryOutputs(Opt, Trace.get());
}

} // namespace exp
} // namespace bor
