//===- exp/ResultSink.h - Where experiment results go --------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ResultSink API: the runner feeds every RunRecord, in deterministic
/// spec order, to any number of sinks. Two implementations ship:
///
///  * TableSink renders the records through support/Table for humans
///    (columns = the union of parameter and metric names, in first-seen
///    order);
///  * JsonLinesSink writes one JSON object per record to a file -- the
///    BENCH_<experiment>.json trajectory consumed by scripts. See
///    docs/BENCHMARKING.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_RESULTSINK_H
#define BOR_EXP_RESULTSINK_H

#include "exp/Experiment.h"

#include <cstdio>
#include <memory>

namespace bor {
namespace exp {

class ResultSink {
public:
  virtual ~ResultSink() = default;

  /// Called once before any record.
  virtual void begin(const ExperimentSpec &Spec) { (void)Spec; }

  /// Called once per record, in spec order; per-cell records arrive
  /// first (IsSummary false), then any summary records (IsSummary true).
  virtual void record(const RunRecord &R, bool IsSummary) = 0;

  /// Called once after the last record.
  virtual void end() {}
};

/// Renders all records as one column-aligned table on \p Out, preceded by
/// the spec's title and followed by its notes.
class TableSink : public ResultSink {
public:
  explicit TableSink(std::FILE *Out = stdout) : Out(Out) {}

  void begin(const ExperimentSpec &Spec) override;
  void record(const RunRecord &R, bool IsSummary) override;
  void end() override;

private:
  std::FILE *Out;
  std::string Title;
  std::string Notes;
  std::vector<std::string> Columns;
  std::vector<RunRecord> Records;
};

/// Writes one JSON object per record (JSON-lines). The first line is a
/// header record describing the experiment.
///
/// Sinks opened by path stream to atomicTempPath(path) and rename over
/// the real path in end(), so a crashed or killed run never leaves a
/// truncated results file — only a stale *.tmp the next run overwrites.
class JsonLinesSink : public ResultSink {
public:
  /// Takes ownership of \p Out when \p Owned (close on destruction).
  JsonLinesSink(std::FILE *Out, bool Owned) : Out(Out), Owned(Owned) {}
  ~JsonLinesSink() override;

  /// Opens \p Path for writing (atomically, via a temp file renamed in
  /// end()); returns nullptr (with a message on stderr) if the file
  /// cannot be created.
  static std::unique_ptr<JsonLinesSink> open(const std::string &Path);

  void begin(const ExperimentSpec &Spec) override;
  void record(const RunRecord &R, bool IsSummary) override;
  void end() override;

private:
  std::FILE *Out;
  bool Owned;
  std::string FinalPath; ///< non-empty = publish the temp file in end()
  std::string Experiment;
  size_t CellIndex = 0;
};

} // namespace exp
} // namespace bor

#endif // BOR_EXP_RESULTSINK_H
