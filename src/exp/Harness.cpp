//===- exp/Harness.cpp - Shared drivers for the paper's experiments ------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Harness.h"

#include "profile/Accuracy.h"
#include "profile/SamplingPolicy.h"
#include "support/Rng.h"
#include "support/Stats.h"

namespace bor {
namespace exp {

AccuracyRow runAccuracy(const BenchmarkModel &Model, uint64_t Interval,
                        uint64_t BrrSeed) {
  constexpr unsigned NumSeeds = 3;
  MethodProfile Full(Model.NumMethods);
  MethodProfile Sw(Model.NumMethods);
  MethodProfile Hw(Model.NumMethods);
  std::vector<MethodProfile> Rand(NumSeeds, MethodProfile(Model.NumMethods));

  SwCounterPolicy SwP(Interval);
  HwCounterPolicy HwP(Interval);
  std::vector<BrrPolicy> RandP;
  SplitMix64 Seeder(BrrSeed);
  for (unsigned I = 0; I != NumSeeds; ++I) {
    BrrUnitConfig BrrCfg;
    do {
      BrrCfg.Seed = Seeder.next();
    } while ((BrrCfg.Seed & ((1ULL << BrrCfg.LfsrWidth) - 1)) == 0);
    RandP.emplace_back(Interval, BrrCfg);
  }

  InvocationStream Stream(Model);
  while (!Stream.done()) {
    uint32_t Id = Stream.next();
    Full.record(Id);
    if (SwP.sample())
      Sw.record(Id);
    if (HwP.sample())
      Hw.record(Id);
    for (unsigned I = 0; I != NumSeeds; ++I)
      if (RandP[I].sample())
        Rand[I].record(Id);
  }

  AccuracyRow Row;
  Row.SwCount = overlapAccuracy(Full, Sw);
  Row.HwCount = overlapAccuracy(Full, Hw);
  RunningStat Stat;
  for (const MethodProfile &P : Rand)
    Stat.add(overlapAccuracy(Full, P));
  Row.Random = Stat.mean();
  Row.RandomSpread = Stat.max() - Stat.min();
  return Row;
}

MicroRun runMicrobench(const InstrumentationConfig &Instr, size_t NumChars,
                       const PipelineConfig &Machine) {
  MicrobenchConfig C;
  C.Text.NumChars = NumChars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  Pipeline Pipe(MB.Prog, Machine);
  MicroRun Run;
  RunResult Result = Pipe.run(1ULL << 40);
  Run.Stats = Result.Stats;
  if (Result.Markers.size() == 2)
    Run.RoiCycles = Result.roiCycles();
  Run.DynamicSiteVisits = MB.DynamicSiteVisits;
  return Run;
}

InstrumentationConfig microConfig(SamplingFramework F, DuplicationMode Dup,
                                  uint64_t Interval, bool IncludeBody) {
  InstrumentationConfig C;
  C.Framework = F;
  C.Dup = Dup;
  C.Interval = Interval;
  C.IncludeBody = IncludeBody;
  return C;
}

std::vector<uint64_t> figureIntervals() {
  return {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

} // namespace exp
} // namespace bor
