//===- exp/Harness.cpp - Shared drivers for the paper's experiments ------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Harness.h"

#include "ckpt/LibraryPool.h"
#include "profile/Accuracy.h"
#include "profile/SamplingPolicy.h"
#include "support/Rng.h"
#include "support/Stats.h"

namespace bor {
namespace exp {

AccuracyRow runAccuracy(const BenchmarkModel &Model, uint64_t Interval,
                        uint64_t BrrSeed) {
  constexpr unsigned NumSeeds = 3;
  MethodProfile Full(Model.NumMethods);
  MethodProfile Sw(Model.NumMethods);
  MethodProfile Hw(Model.NumMethods);
  std::vector<MethodProfile> Rand(NumSeeds, MethodProfile(Model.NumMethods));

  SwCounterPolicy SwP(Interval);
  HwCounterPolicy HwP(Interval);
  std::vector<BrrPolicy> RandP;
  SplitMix64 Seeder(BrrSeed);
  for (unsigned I = 0; I != NumSeeds; ++I) {
    BrrUnitConfig BrrCfg;
    do {
      BrrCfg.Seed = Seeder.next();
    } while ((BrrCfg.Seed & ((1ULL << BrrCfg.LfsrWidth) - 1)) == 0);
    RandP.emplace_back(Interval, BrrCfg);
  }

  InvocationStream Stream(Model);
  while (!Stream.done()) {
    uint32_t Id = Stream.next();
    Full.record(Id);
    if (SwP.sample())
      Sw.record(Id);
    if (HwP.sample())
      Hw.record(Id);
    for (unsigned I = 0; I != NumSeeds; ++I)
      if (RandP[I].sample())
        Rand[I].record(Id);
  }

  AccuracyRow Row;
  Row.SwCount = overlapAccuracy(Full, Sw);
  Row.HwCount = overlapAccuracy(Full, Hw);
  RunningStat Stat;
  for (const MethodProfile &P : Rand)
    Stat.add(overlapAccuracy(Full, P));
  Row.Random = Stat.mean();
  Row.RandomSpread = Stat.max() - Stat.min();
  return Row;
}

namespace {

/// Scales the measured-window counters of a sampled run up to the full
/// stream, so metric code written against full-run PipelineStats reads a
/// sampled run identically. Insts is exact (every instruction executed);
/// cycle and event counters are estimates.
PipelineStats scaleSampledStats(const SampledResult &SR) {
  PipelineStats S = SR.Detailed;
  if (SR.MeasuredInsts == 0)
    return S;
  double K = static_cast<double>(SR.TotalInsts) /
             static_cast<double>(SR.MeasuredInsts);
  auto Scale = [K](uint64_t V) {
    return static_cast<uint64_t>(static_cast<double>(V) * K + 0.5);
  };
  S.Insts = SR.TotalInsts;
  S.Cycles = Scale(S.Cycles);
  S.CondBranches = Scale(S.CondBranches);
  S.CondMispredicts = Scale(S.CondMispredicts);
  S.IndirectBranches = Scale(S.IndirectBranches);
  S.IndirectMispredicts = Scale(S.IndirectMispredicts);
  S.DirectJumps = Scale(S.DirectJumps);
  S.DirectJumpDecodeRedirects = Scale(S.DirectJumpDecodeRedirects);
  S.BrrExecuted = Scale(S.BrrExecuted);
  S.BrrTaken = Scale(S.BrrTaken);
  S.FetchIcacheStallCycles = Scale(S.FetchIcacheStallCycles);
  S.BackendFlushCycles = Scale(S.BackendFlushCycles);
  S.FrontendFlushCycles = Scale(S.FrontendFlushCycles);
  S.FullWidthFetchCycles = Scale(S.FullWidthFetchCycles);
  return S;
}

} // namespace

/// One sampled execution, resolving the engine: plain runSampled, or the
/// checkpoint-library path (exact resume, optionally restricted to \p
/// CkptRegions representative phases) when a pool is attached. Shared by
/// runMicrobench and the fig12 application driver so every timed
/// experiment gets library support through one switch.
SampledResult runSampledMaybeLibrary(const DecodedProgram &Dec,
                                     const SamplingPlan &Plan,
                                     const PipelineConfig &Machine,
                                     const telemetry::TelemetrySink *Telemetry,
                                     ckpt::LibraryPool *CkptPool,
                                     unsigned CkptRegions) {
  if (!CkptPool)
    return runSampled(Dec, Plan, Machine, /*Decider=*/nullptr,
                      /*MaxInsts=*/~0ULL, Telemetry);
  std::shared_ptr<const ckpt::CheckpointLibrary> Lib =
      CkptPool->getOrBuild(Dec, Machine.Brr, Plan.PeriodInsts, Telemetry);
  if (CkptRegions != 0) {
    ckpt::RegionSelection Sel =
        ckpt::selectRegions(Lib->periodBbvs(), CkptRegions);
    if (!Sel.Reps.empty())
      return runSampledFromLibrary(Dec, *Lib, Plan, Machine, ~0ULL,
                                   Telemetry, &Sel);
  }
  return runSampledFromLibrary(Dec, *Lib, Plan, Machine, ~0ULL, Telemetry);
}

MicroRun runMicrobench(const InstrumentationConfig &Instr, size_t NumChars,
                       const PipelineConfig &Machine,
                       const SamplingPlan *Plan,
                       const telemetry::TelemetrySink *Telemetry,
                       ckpt::LibraryPool *CkptPool, unsigned CkptRegions) {
  MicrobenchConfig C;
  C.Text.NumChars = NumChars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  MicroRun Run;
  Run.DynamicSiteVisits = MB.DynamicSiteVisits;

  // Decode once per cell: the sampled run's functional phases, its
  // attached detailed intervals, and the full-run fallback all share this
  // image.
  DecodedProgram Dec(MB.Prog);

  if (Plan) {
    SampledResult SR = runSampledMaybeLibrary(Dec, *Plan, Machine, Telemetry,
                                              CkptPool, CkptRegions);
    if (SR.NumIntervals != 0) {
      Run.Sampled = true;
      Run.Stats = scaleSampledStats(SR);
      Run.IpcCi95 = SR.ipcCi95();
      Run.SampleIntervals = SR.NumIntervals;
      Run.FfMs = SR.FastForwardMs;
      Run.WarmMs = SR.WarmMs;
      Run.MeasureMs = SR.MeasureMs;
      if (SR.Markers.size() == 2)
        Run.RoiCycles =
            static_cast<uint64_t>(SR.estimatedCycles(SR.roiInsts()) + 0.5);
      return Run;
    }
    // Stream too short for even one interval: fall through to a full run.
  }

  Pipeline Pipe(Dec, Machine);
  Pipe.setTelemetry(Telemetry);
  RunResult Result = Pipe.run(1ULL << 40);
  Run.Stats = Result.Stats;
  if (Result.Markers.size() == 2)
    Run.RoiCycles = Result.roiCycles();
  return Run;
}

InstrumentationConfig microConfig(SamplingFramework F, DuplicationMode Dup,
                                  uint64_t Interval, bool IncludeBody) {
  InstrumentationConfig C;
  C.Framework = F;
  C.Dup = Dup;
  C.Interval = Interval;
  C.IncludeBody = IncludeBody;
  return C;
}

std::vector<uint64_t> figureIntervals() {
  return {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

} // namespace exp
} // namespace bor
