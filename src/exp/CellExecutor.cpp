//===- exp/CellExecutor.cpp - Pluggable grid-cell execution backends -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/CellExecutor.h"

#include "exp/ThreadPool.h"
#include "telemetry/Counters.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace bor {
namespace exp {

namespace {

/// Shared state between a timed cell attempt and its abandonable thread.
/// The thread owns a reference; once the waiter gives up, the thread's
/// eventual result is dropped on the floor and the state dies with the
/// thread.
struct TimedAttempt {
  std::mutex M;
  std::condition_variable CV;
  bool Done = false;
  bool Abandoned = false;
  RunRecord Record;
};

/// Runs \p Fn on a detached thread and waits up to \p TimeoutS seconds.
/// Returns true (with \p Out filled) when the cell finished in time.
bool runAbandonable(std::function<RunRecord()> Fn, double TimeoutS,
                    RunRecord &Out) {
  auto State = std::make_shared<TimedAttempt>();
  std::thread([State, Fn = std::move(Fn)] {
    RunRecord R = Fn();
    std::lock_guard<std::mutex> Lock(State->M);
    if (!State->Abandoned)
      State->Record = std::move(R);
    State->Done = true;
    State->CV.notify_all();
  }).detach();

  std::unique_lock<std::mutex> Lock(State->M);
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::duration<double>(TimeoutS));
  if (State->CV.wait_until(Lock, Deadline,
                           [&State] { return State->Done; })) {
    Out = std::move(State->Record);
    return true;
  }
  State->Abandoned = true;
  return false;
}

} // namespace

std::vector<CellOutcome> LocalExecutor::execute(const ExperimentSpec &Spec,
                                                std::vector<RunRecord> &Results,
                                                const CellFn &RunCell,
                                                const DoneFn &OnCellDone) {
  const size_t N = Spec.Cells.size();
  std::vector<CellOutcome> Outcomes(N);

  auto RunOne = [&](size_t I) {
    if (CellTimeoutS <= 0) {
      Results[I] = RunCell(I);
    } else {
      // Abandon-safe closure: copies of the run functor (whose captures
      // are shared_ptr-owned) and the cell's parameters, so a timed-out
      // thread never dangles into the runner's stack frame.
      std::function<RunRecord()> Timed =
          [Run = Spec.Run, Cell = Spec.Cells[I], I]() { return Run(Cell, I); };
      RunRecord R;
      if (runAbandonable(std::move(Timed), CellTimeoutS, R)) {
        Results[I] = std::move(R);
      } else {
        Outcomes[I].S = CellOutcome::State::TimedOut;
        if (telemetry::CounterRegistry::enabled()) {
          static const telemetry::Counter TimedOut("exp.cells.timedout");
          TimedOut.add();
        }
      }
    }
    OnCellDone(I);
  };

  // Multi-cell grids always go through the pool — even with one worker —
  // so the pool's telemetry counters depend only on the grid, never on
  // the --threads value, keeping counter snapshots thread-count-invariant
  // just like the result records.
  if (N <= 1) {
    for (size_t I = 0; I != N; ++I)
      RunOne(I);
  } else {
    ThreadPool Pool(Threads);
    for (size_t I = 0; I != N; ++I)
      Pool.submit([&RunOne, I] { RunOne(I); });
    Pool.wait();
  }
  return Outcomes;
}

} // namespace exp
} // namespace bor
