//===- exp/Experiment.h - Declarative experiment specs and the registry --===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment-runner subsystem's core types. An ExperimentSpec is a
/// declarative description of one paper experiment: a parameter grid (one
/// ParamSet per cell), a thread-safe run functor that measures one cell
/// and returns a RunRecord, and optional serial setup/summary stages. The
/// process-wide ExperimentRegistry maps names ("fig13", "ablation", ...)
/// to spec factories so a single driver (bor-bench, or a thin per-figure
/// wrapper binary) can list and run everything.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_EXPERIMENT_H
#define BOR_EXP_EXPERIMENT_H

#include "exp/RunRecord.h"
#include "sample/SamplingPlan.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace bor {

namespace telemetry {
struct TelemetrySink;
} // namespace telemetry

namespace ckpt {
class LibraryPool;
} // namespace ckpt

namespace exp {

/// The coordinates of one grid cell, as ordered key/value strings (they
/// become both table columns and JSON fields).
using ParamSet = std::vector<std::pair<std::string, std::string>>;

/// Global knobs a factory may use to shrink an experiment for smoke tests
/// and CI (workload sizes divide by Scale; the grid shape is unchanged so
/// records stay comparable across scales).
struct ExperimentOptions {
  uint64_t Scale = 1;

  /// Sampled-simulation mode (bor-bench --sample): timed cells run
  /// through the SampledRunner under Plan instead of through a full
  /// detailed Pipeline. Purely functional cells ignore it.
  bool Sample = false;
  SamplingPlan Plan;

  /// Observability sink (bor-bench --trace): factories capture it into
  /// their run functors and hand it down to the harness drivers, which
  /// emit sampled-phase spans through it. Null when telemetry is off; the
  /// sink must outlive every cell run.
  const telemetry::TelemetrySink *Telemetry = nullptr;

  /// Checkpoint-library mode (bor-bench --ckpt-library): sampled cells
  /// resume their fast-forward spans from a shared COW checkpoint library
  /// instead of re-executing the prefix. One pool serves the whole grid —
  /// cells with the same (program, decider config, period) share one
  /// build — and must outlive every cell run. Null means plain sampling;
  /// ignored when Sample is off.
  ckpt::LibraryPool *CkptPool = nullptr;

  /// Representative-region mode (bor-bench --ckpt-regions=N): measure at
  /// most N distinct program phases per cell, selected from the library's
  /// per-period basic-block vectors, weighting each by the periods it
  /// represents. 0 (the default) measures every period exactly as plain
  /// sampling does. Requires CkptPool.
  unsigned CkptRegions = 0;

  /// The plan when sampling is on, nullptr otherwise — the form the
  /// harness drivers take.
  const SamplingPlan *samplePlan() const { return Sample ? &Plan : nullptr; }
};

/// One registered experiment, fully described.
struct ExperimentSpec {
  std::string Name;  ///< registry key; also names BENCH_<Name>.json
  std::string Title; ///< heading printed before the results table
  std::string Notes; ///< commentary printed after the results table

  /// The parameter grid, in the order results are reported.
  std::vector<ParamSet> Cells;

  /// Optional serial stage run once before any cell (shared baselines).
  std::function<void()> Setup;

  /// Measures cell \p Cells[Index]. MUST be thread-safe and deterministic:
  /// cells run concurrently and every run constructs its own Pipeline /
  /// BrrPolicy state from the cell's parameters alone.
  std::function<RunRecord(const ParamSet &Cell, size_t Index)> Run;

  /// Optional serial stage deriving summary records (averages, spreads,
  /// verdicts) from the per-cell records, in order.
  std::function<std::vector<RunRecord>(const std::vector<RunRecord> &)>
      Summarize;
};

/// Process-wide name -> factory map. Factories build a fresh spec per
/// invocation so option-dependent grids (scaled workloads) stay pure.
class ExperimentRegistry {
public:
  using Factory = std::function<ExperimentSpec(const ExperimentOptions &)>;

  static ExperimentRegistry &instance();

  /// Registers \p F under \p Name. Re-registering a name replaces the
  /// previous factory (useful in tests; does not happen in production).
  void add(std::string Name, std::string Description, Factory F);

  bool contains(const std::string &Name) const;

  /// Instantiates the named experiment. Asserts the name is registered.
  ExperimentSpec create(const std::string &Name,
                        const ExperimentOptions &Options) const;

  /// Name/description pairs, sorted by name.
  std::vector<std::pair<std::string, std::string>> list() const;

private:
  struct Entry {
    std::string Description;
    Factory Make;
  };
  std::map<std::string, Entry> Entries;
};

} // namespace exp
} // namespace bor

#endif // BOR_EXP_EXPERIMENT_H
