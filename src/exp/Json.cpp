//===- exp/Json.cpp - Minimal JSON rendering for result records ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bor {
namespace exp {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string jsonNumber(uint64_t V) { return std::to_string(V); }

std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  // Exact integers stay integers (cycle counts routinely flow through
  // doubles and must not grow a ".0" or an exponent).
  constexpr double ExactLimit = 9007199254740992.0; // 2^53
  if (V == std::floor(V) && std::fabs(V) < ExactLimit) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  // Shortest representation that round-trips.
  char Buf[40];
  for (int Precision = 15; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  return Buf;
}

void JsonObjectWriter::comma() {
  if (!First)
    Buf += ',';
  First = false;
}

void JsonObjectWriter::field(std::string_view Key, std::string_view Value) {
  comma();
  Buf += '"';
  Buf += jsonEscape(Key);
  Buf += "\":\"";
  Buf += jsonEscape(Value);
  Buf += '"';
}

void JsonObjectWriter::fieldRaw(std::string_view Key, std::string_view Raw) {
  comma();
  Buf += '"';
  Buf += jsonEscape(Key);
  Buf += "\":";
  Buf += Raw;
}

std::string JsonObjectWriter::finish() {
  Buf += '}';
  return std::move(Buf);
}

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &F : Fields)
    if (F.first == Key)
      return &F.second;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view. Errors report the byte
/// offset of the offending character.
class JsonParser {
public:
  JsonParser(std::string_view Text, std::string &Err)
      : Text(Text), Err(Err) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out, /*Depth=*/0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const char *Msg) {
    Err = "offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  bool atEnd() const { return Pos == Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!atEnd()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool expect(char C, const char *Msg) {
    if (atEnd() || Text[Pos] != C)
      return fail(Msg);
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word, const char *Msg) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail(Msg);
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (atEnd())
      return fail("expected a JSON value");
    switch (peek()) {
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null", "expected 'null'");
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      return literal("true", "expected 'true'");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      return literal("false", "expected 'false'");
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    ++Pos; // '['
    Out.K = JsonValue::Kind::Array;
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Out.Elems.emplace_back();
      if (!parseValue(Out.Elems.back(), Depth + 1))
        return false;
      skipWs();
      if (atEnd())
        return fail("unterminated array");
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      if (!expect(',', "expected ',' or ']' in array"))
        return false;
      skipWs();
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    Out.K = JsonValue::Kind::Object;
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"')
        return fail("expected a string key in object");
      Out.Fields.emplace_back();
      if (!parseString(Out.Fields.back().first))
        return false;
      skipWs();
      if (!expect(':', "expected ':' after object key"))
        return false;
      skipWs();
      if (!parseValue(Out.Fields.back().second, Depth + 1))
        return false;
      skipWs();
      if (atEnd())
        return fail("unterminated object");
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      if (!expect(',', "expected ',' or '}' in object"))
        return false;
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos + static_cast<size_t>(I)];
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<unsigned>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<unsigned>(C - 'A') + 10;
      else
        return fail("bad hex digit in \\u escape");
      Out = Out * 16 + Digit;
    }
    Pos += 4;
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xc0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xe0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    while (true) {
      if (atEnd())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // '\\'
      if (atEnd())
        return fail("truncated escape sequence");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp = 0;
        if (!parseHex4(Cp))
          return false;
        if (Cp >= 0xd800 && Cp <= 0xdbff) {
          // High surrogate: a low surrogate escape must follow.
          if (Text.substr(Pos, 2) != "\\u")
            return fail("unpaired high surrogate");
          Pos += 2;
          unsigned Lo = 0;
          if (!parseHex4(Lo))
            return false;
          if (Lo < 0xdc00 || Lo > 0xdfff)
            return fail("invalid low surrogate");
          Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Lo - 0xdc00);
        } else if (Cp >= 0xdc00 && Cp <= 0xdfff) {
          return fail("unpaired low surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("unknown escape sequence");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    if (atEnd() || peek() < '0' || peek() > '9')
      return fail("expected a JSON value");
    if (peek() == '0')
      ++Pos;
    else
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    if (!atEnd() && peek() == '.') {
      ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("expected digits after decimal point");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("expected digits in exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    return true;
  }

  std::string_view Text;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

bool jsonParse(std::string_view Text, JsonValue &Out, std::string &Err) {
  Out = JsonValue();
  return JsonParser(Text, Err).parse(Out);
}

} // namespace exp
} // namespace bor
