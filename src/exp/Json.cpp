//===- exp/Json.cpp - Minimal JSON rendering for result records ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bor {
namespace exp {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string jsonNumber(uint64_t V) { return std::to_string(V); }

std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  // Exact integers stay integers (cycle counts routinely flow through
  // doubles and must not grow a ".0" or an exponent).
  constexpr double ExactLimit = 9007199254740992.0; // 2^53
  if (V == std::floor(V) && std::fabs(V) < ExactLimit) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  // Shortest representation that round-trips.
  char Buf[40];
  for (int Precision = 15; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  return Buf;
}

void JsonObjectWriter::comma() {
  if (!First)
    Buf += ',';
  First = false;
}

void JsonObjectWriter::field(std::string_view Key, std::string_view Value) {
  comma();
  Buf += '"';
  Buf += jsonEscape(Key);
  Buf += "\":\"";
  Buf += jsonEscape(Value);
  Buf += '"';
}

void JsonObjectWriter::fieldRaw(std::string_view Key, std::string_view Raw) {
  comma();
  Buf += '"';
  Buf += jsonEscape(Key);
  Buf += "\":";
  Buf += Raw;
}

std::string JsonObjectWriter::finish() {
  Buf += '}';
  return std::move(Buf);
}

} // namespace exp
} // namespace bor
