//===- exp/Manifest.cpp - Self-describing run manifests -------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/Manifest.h"

#include "exp/Json.h"
#include "support/BuildInfo.h"
#include "support/Path.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>

using namespace bor;
using namespace bor::exp;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

namespace {

std::string utcNow() {
  std::time_t T = std::time(nullptr);
  std::tm Tm;
  gmtime_r(&T, &Tm);
  char Buf[32];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%SZ", &Tm);
  return Buf;
}

bool readTextFile(const std::string &Path, std::string &Out,
                  std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "' for reading";
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Err = "error reading '" + Path + "'";
  return Ok;
}

} // namespace

bool bor::exp::writeManifest(const std::string &Dir, const ManifestInfo &Info,
                             std::string &Err) {
  if (!ensureDirs(Dir, Err))
    return false;

  const BuildInfo &BI = buildInfo();
  JsonObjectWriter Build;
  Build.field("git_rev", BI.GitRevision);
  Build.field("compiler", BI.Compiler);
  Build.field("build_type", BI.BuildType);
  Build.field("flags", BI.Flags);

  JsonObjectWriter Config;
  Config.fieldRaw("scale", jsonNumber(Info.Scale));
  Config.fieldRaw("threads",
                  jsonNumber(static_cast<uint64_t>(Info.Threads)));
  Config.fieldRaw("sample", Info.Sample ? "true" : "false");
  Config.fieldRaw("sample_period", jsonNumber(Info.Plan.PeriodInsts));
  Config.fieldRaw("sample_warm", jsonNumber(Info.Plan.WarmupInsts));
  Config.fieldRaw("sample_measure", jsonNumber(Info.Plan.MeasureInsts));
  Config.fieldRaw("ckpt_library", Info.CkptLibrary ? "true" : "false");
  Config.fieldRaw("ckpt_regions",
                  jsonNumber(static_cast<uint64_t>(Info.CkptRegions)));
  if (Info.Serve) {
    Config.fieldRaw("serve", "true");
    Config.fieldRaw("spawn_workers",
                    jsonNumber(static_cast<uint64_t>(Info.SpawnWorkers)));
  }
  if (Info.CellsLost || Info.CellsTimedOut) {
    Config.fieldRaw("partial", "true");
    Config.fieldRaw("cells_lost",
                    jsonNumber(static_cast<uint64_t>(Info.CellsLost)));
    Config.fieldRaw("cells_timedout",
                    jsonNumber(static_cast<uint64_t>(Info.CellsTimedOut)));
  }

  std::string Experiments = "[";
  for (size_t I = 0; I != Info.Experiments.size(); ++I) {
    if (I)
      Experiments += ",";
    Experiments += "\"" + jsonEscape(Info.Experiments[I]) + "\"";
  }
  Experiments += "]";

  JsonObjectWriter Results;
  for (const auto &[Name, Path] : Info.ResultFiles)
    Results.field(Name, Path);
  JsonObjectWriter Files;
  Files.fieldRaw("results", Results.finish());
  if (!Info.CountersFile.empty())
    Files.field("counters", Info.CountersFile);
  if (!Info.TimeSeriesFile.empty())
    Files.field("timeseries", Info.TimeSeriesFile);
  if (!Info.TraceFile.empty())
    Files.field("trace", Info.TraceFile);

  JsonObjectWriter W;
  W.field("schema", "bor-run-manifest-v1");
  W.field("tool", Info.Tool);
  W.field("command", Info.Command);
  W.field("created_utc", utcNow());
  W.fieldRaw("build", Build.finish());
  W.fieldRaw("config", Config.finish());
  W.fieldRaw("experiments", Experiments);
  W.fieldRaw("files", Files.finish());

  // Atomic: a manifest either exists complete or not at all, preserving
  // "a manifest implies complete files".
  return writeFileAtomic(joinPath(Dir, "manifest.json"), W.finish() + "\n",
                         Err);
}

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

const LoadedMetric *LoadedRecord::findMetric(const std::string &Name) const {
  for (const auto &KV : Metrics)
    if (KV.first == Name)
      return &KV.second;
  return nullptr;
}

std::string LoadedRecord::paramKey() const {
  std::string Key = IsSummary ? "summary" : "cell";
  for (const auto &KV : Params)
    Key += " " + KV.first + "=" + KV.second;
  return Key;
}

const LoadedExperiment *
LoadedRun::findExperiment(const std::string &Name) const {
  for (const LoadedExperiment &E : Experiments)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

namespace {

std::string fieldString(const JsonValue &Obj, std::string_view Key) {
  const JsonValue *V = Obj.find(Key);
  return V && V->isString() ? V->Str : std::string();
}

double fieldNumber(const JsonValue &Obj, std::string_view Key) {
  const JsonValue *V = Obj.find(Key);
  return V && V->isNumber() ? V->Num : 0.0;
}

bool parseResultLine(const JsonValue &Obj,
                     std::vector<LoadedExperiment> &Out, std::string &Err) {
  std::string Name = fieldString(Obj, "experiment");
  std::string Kind = fieldString(Obj, "kind");
  if (Name.empty() || Kind.empty()) {
    Err = "record without experiment/kind fields";
    return false;
  }

  if (Kind == "header") {
    LoadedExperiment E;
    E.Name = Name;
    E.Title = fieldString(Obj, "title");
    E.Cells = static_cast<uint64_t>(fieldNumber(Obj, "cells"));
    Out.push_back(std::move(E));
    return true;
  }

  if (Out.empty() || Out.back().Name != Name) {
    Err = "record for '" + Name + "' without a preceding header";
    return false;
  }

  LoadedRecord R;
  R.IsSummary = Kind == "summary";
  if (!R.IsSummary && Kind != "cell") {
    Err = "unknown record kind '" + Kind + "'";
    return false;
  }
  if (const JsonValue *Cell = Obj.find("cell"))
    if (Cell->isNumber())
      R.Cell = static_cast<int64_t>(Cell->Num);
  if (const JsonValue *Params = Obj.find("params"))
    for (const auto &[K, V] : Params->Fields)
      R.Params.emplace_back(K, V.isString() ? V.Str : std::string());
  if (const JsonValue *Metrics = Obj.find("metrics"))
    for (const auto &[K, V] : Metrics->Fields) {
      LoadedMetric M;
      if (V.isNumber()) {
        M.Num = V.Num;
      } else if (V.isString()) {
        M.IsNumber = false;
        M.Text = V.Str;
      } else {
        continue; // null (non-finite) — not comparable
      }
      R.Metrics.emplace_back(K, std::move(M));
    }
  Out.back().Records.push_back(std::move(R));
  return true;
}

bool loadResultsFile(const std::string &Path,
                     std::vector<LoadedExperiment> &Out, std::string &Err) {
  std::string Text;
  if (!readTextFile(Path, Text, Err))
    return false;
  if (!parseResultsJsonLines(Text, Out, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  return true;
}

bool loadCounters(const std::string &Path, LoadedRun &Out, std::string &Err) {
  std::string Text;
  if (!readTextFile(Path, Text, Err))
    return false;
  JsonValue Root;
  if (!jsonParse(Text, Root, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  if (const JsonValue *Counters = Root.find("counters"))
    for (const auto &[K, V] : Counters->Fields)
      if (V.isNumber())
        Out.Counters.emplace_back(K, static_cast<uint64_t>(V.Num));
  std::sort(Out.Counters.begin(), Out.Counters.end());
  return true;
}

bool loadTimeSeries(const std::string &Path, LoadedRun &Out,
                    std::string &Err) {
  std::string Text;
  if (!readTextFile(Path, Text, Err))
    return false;
  JsonValue Root;
  if (!jsonParse(Text, Root, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  const JsonValue *Series = Root.find("series");
  if (!Series || !Series->isArray())
    return true;
  auto Column = [](const JsonValue &Obj, std::string_view Key) {
    std::vector<double> V;
    if (const JsonValue *Arr = Obj.find(Key))
      for (const JsonValue &E : Arr->Elems)
        V.push_back(E.isNumber() ? E.Num : 0.0);
    return V;
  };
  for (const JsonValue &S : Series->Elems) {
    LoadedSeries L;
    L.Experiment = fieldString(S, "experiment");
    L.Cell = static_cast<int64_t>(fieldNumber(S, "cell"));
    L.Run = static_cast<uint64_t>(fieldNumber(S, "run"));
    L.Ipc = Column(S, "ipc");
    L.FlushFrac = Column(S, "flush_frac");
    L.BrrRate = Column(S, "brr_rate");
    L.FfInsts = Column(S, "ff_insts");
    Out.Series.push_back(std::move(L));
  }
  return true;
}

bool loadFromManifest(const std::string &Dir, const std::string &Path,
                      LoadedRun &Out, std::string &Err) {
  std::string Text;
  if (!readTextFile(Path, Text, Err))
    return false;
  JsonValue Root;
  if (!jsonParse(Text, Root, Err)) {
    Err = Path + ": " + Err;
    return false;
  }
  if (fieldString(Root, "schema") != "bor-run-manifest-v1") {
    Err = Path + ": not a bor run manifest (schema mismatch)";
    return false;
  }

  Out.HasManifest = true;
  Out.Command = fieldString(Root, "command");
  if (const JsonValue *Build = Root.find("build")) {
    Out.GitRevision = fieldString(*Build, "git_rev");
    Out.Compiler = fieldString(*Build, "compiler");
    Out.BuildType = fieldString(*Build, "build_type");
  }
  if (const JsonValue *Config = Root.find("config")) {
    Out.Scale = static_cast<uint64_t>(fieldNumber(*Config, "scale"));
    Out.Threads = static_cast<unsigned>(fieldNumber(*Config, "threads"));
    const JsonValue *Sample = Config->find("sample");
    Out.Sample = Sample && Sample->isBool() && Sample->BoolVal;
  }

  const JsonValue *Files = Root.find("files");
  if (!Files) {
    Err = Path + ": manifest has no files block";
    return false;
  }
  if (const JsonValue *Results = Files->find("results"))
    for (const auto &[Name, Rel] : Results->Fields) {
      (void)Name;
      if (!Rel.isString())
        continue;
      if (!loadResultsFile(joinPath(Dir, Rel.Str), Out.Experiments, Err))
        return false;
    }
  std::string Counters = fieldString(*Files, "counters");
  if (!Counters.empty() && !loadCounters(joinPath(Dir, Counters), Out, Err))
    return false;
  std::string Series = fieldString(*Files, "timeseries");
  if (!Series.empty() && !loadTimeSeries(joinPath(Dir, Series), Out, Err))
    return false;
  return true;
}

} // namespace

bool bor::exp::parseResultsJsonLines(const std::string &Text,
                                     std::vector<LoadedExperiment> &Out,
                                     std::string &Err) {
  size_t Pos = 0, LineNo = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string_view Line(Text.data() + Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string_view::npos)
      continue;
    JsonValue Obj;
    if (!jsonParse(Line, Obj, Err)) {
      Err = "line " + std::to_string(LineNo) + ": " + Err;
      return false;
    }
    if (!parseResultLine(Obj, Out, Err)) {
      Err = "line " + std::to_string(LineNo) + ": " + Err;
      return false;
    }
  }
  if (Out.empty()) {
    Err = "no experiment records found";
    return false;
  }
  return true;
}

bool bor::exp::loadRun(const std::string &Path, LoadedRun &Out,
                       std::string &Err) {
  Out = LoadedRun();
  Out.Source = Path;

  std::error_code Ec;
  if (fs::is_directory(fs::path(Path), Ec))
    return loadFromManifest(Path, joinPath(Path, "manifest.json"), Out, Err);

  fs::path P(Path);
  if (P.filename() == "manifest.json")
    return loadFromManifest(P.parent_path().string(), Path, Out, Err);

  // A bare JSON-lines results file (e.g. a committed bench/BENCH_*.json
  // baseline): results only, no counters or time series to compare.
  return loadResultsFile(Path, Out.Experiments, Err);
}
