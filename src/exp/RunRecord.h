//===- exp/RunRecord.h - One experiment cell's structured result ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable result of running one cell of an experiment's
/// parameter grid: the cell's coordinates (ordered string key/value
/// parameters) plus its measured metrics (integers, reals or text).
/// Insertion order is preserved everywhere so serialized output is
/// deterministic and columns line up across records.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_RUNRECORD_H
#define BOR_EXP_RUNRECORD_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bor {
namespace exp {

/// A single measured value. Reals carry the precision the human-readable
/// table should round to; JSON output always keeps full precision.
struct Metric {
  enum class Kind { UInt, Real, Text };
  Kind K = Kind::UInt;
  uint64_t U = 0;
  double D = 0;
  std::string S;
  int TablePrecision = 2;
};

/// One cell's parameters and metrics, in insertion order.
struct RunRecord {
  std::vector<std::pair<std::string, std::string>> Params;
  std::vector<std::pair<std::string, Metric>> Metrics;

  RunRecord &param(std::string Key, std::string Value) {
    Params.emplace_back(std::move(Key), std::move(Value));
    return *this;
  }

  RunRecord &metric(std::string Key, uint64_t Value) {
    Metric M;
    M.K = Metric::Kind::UInt;
    M.U = Value;
    Metrics.emplace_back(std::move(Key), std::move(M));
    return *this;
  }

  RunRecord &metric(std::string Key, double Value, int TablePrecision = 2) {
    Metric M;
    M.K = Metric::Kind::Real;
    M.D = Value;
    M.TablePrecision = TablePrecision;
    Metrics.emplace_back(std::move(Key), std::move(M));
    return *this;
  }

  RunRecord &metric(std::string Key, std::string Value) {
    Metric M;
    M.K = Metric::Kind::Text;
    M.S = std::move(Value);
    Metrics.emplace_back(std::move(Key), std::move(M));
    return *this;
  }

  const Metric *findMetric(std::string_view Key) const {
    for (const auto &KV : Metrics)
      if (KV.first == Key)
        return &KV.second;
    return nullptr;
  }

  const std::string *findParam(std::string_view Key) const {
    for (const auto &KV : Params)
      if (KV.first == Key)
        return &KV.second;
    return nullptr;
  }
};

} // namespace exp
} // namespace bor

#endif // BOR_EXP_RUNRECORD_H
