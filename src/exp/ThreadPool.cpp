//===- exp/ThreadPool.cpp - Fixed-size worker pool -----------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "exp/ThreadPool.h"

#include "telemetry/Counters.h"

namespace bor {
namespace exp {

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // Published per pool lifetime; the task count depends only on the work
  // submitted, never on the worker count, so snapshots stay deterministic
  // across --threads values.
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Pools("exp.pool.pools");
    static const telemetry::Counter Tasks("exp.pool.tasks");
    Pools.add();
    Tasks.add(Executed);
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
    ++Unfinished;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Unfinished == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      ++Executed;
      if (--Unfinished == 0)
        AllDone.notify_all();
    }
  }
}

uint64_t ThreadPool::tasksExecuted() const {
  std::unique_lock<std::mutex> Lock(Mutex);
  return Executed;
}

unsigned ThreadPool::defaultThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

} // namespace exp
} // namespace bor
