//===- exp/ThreadPool.h - Fixed-size worker pool for experiment cells ----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a FIFO task queue. The experiment runner
/// uses it to fan independent grid cells out across cores; it is small and
/// general enough for any embarrassingly-parallel work. Tasks must not
/// throw (the simulators report failure through assert, not exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_THREADPOOL_H
#define BOR_EXP_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bor {
namespace exp {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker, FIFO order.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished executing.
  void wait();

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Tasks that have finished executing over the pool's lifetime.
  uint64_t tasksExecuted() const;

  /// The default worker count: the hardware concurrency, or 1 if the
  /// runtime cannot tell.
  static unsigned defaultThreads();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Unfinished = 0; ///< queued + currently executing
  uint64_t Executed = 0; ///< tasks completed, for telemetry
  bool Stopping = false;
};

} // namespace exp
} // namespace bor

#endif // BOR_EXP_THREADPOOL_H
