//===- exp/ExperimentsPgo.cpp - The closed PGO loop, measured -------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pgo_layout` experiment: the whole point of cheap brr profiling is
/// that the profile is good enough to *use*. Each cell takes the
/// pessimal-layout PGO workload, collects a profile through one of four
/// sources — none (structural passes only), the exact interpreter oracle,
/// brr-sampled sites, or counter-sampled sites — runs the layout
/// optimizer on it, and times baseline vs optimized through the full
/// detailed pipeline. A register-resident LCG drives all workload control
/// flow, so every variant computes the identical checksum (the cell's
/// execution-equivalence self-check) and all cycle counts are
/// deterministic per seed: the summary's 95% confidence intervals measure
/// spread across seeds, not simulator noise.
///
/// The summary verdict is PASS when the brr-profiled layout's cycle CI is
/// disjoint from (and below) the baseline's and every cell's self-check
/// held — the claim tests/pgo_layout_gate.cmake gates CI on. The
/// profile_overhead_pct column is the price of collecting the profile
/// (instrumented vs baseline pipeline cycles); the oracle rows pay no
/// pipeline overhead but cost a full functional trace instead, which is
/// the comparison the paper's Section 2 motivates.
///
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "exp/Experiment.h"
#include "opt/Passes.h"
#include "opt/ProfileMap.h"
#include "sim/Decode.h"
#include "sim/Interpreter.h"
#include "support/Stats.h"
#include "uarch/Pipeline.h"
#include "workloads/PgoGen.h"

#include <algorithm>
#include <cstdio>

namespace bor {
namespace exp {

namespace {

constexpr const char *PgoSources[] = {"none", "oracle", "brr", "cbs"};
constexpr size_t NumPgoSources = sizeof(PgoSources) / sizeof(PgoSources[0]);
constexpr size_t PgoSeeds = 5;
constexpr uint64_t PgoInterval = 64;
constexpr uint64_t PgoMaxSteps = 1ULL << 28;

/// Detailed-pipeline ROI cycles of \p P (asserts the ROI markers ran).
uint64_t pipelineRoiCycles(const Program &P) {
  DecodedProgram Dec(P);
  Pipeline Pipe(Dec, PipelineConfig());
  RunResult R = Pipe.run(1ULL << 40);
  return R.Markers.size() == 2 ? R.roiCycles() : 0;
}

/// Functional reference run: the stored checksum plus the dynamic
/// instruction count (the cost of collecting a functional profile).
struct FuncRef {
  uint64_t Checksum = 0;
  uint64_t Insts = 0;
  bool Halted = false;
};

FuncRef funcRun(const Program &P, uint64_t ChecksumAddr) {
  Machine Mach;
  BrrUnitDecider D;
  Interpreter I(P, Mach, D);
  RunStats S = I.run(PgoMaxSteps);
  FuncRef R;
  R.Checksum = Mach.memory().readU64(ChecksumAddr);
  R.Insts = S.Insts;
  R.Halted = S.Halted;
  return R;
}

RunRecord runPgoCell(const std::string &Source, uint64_t Seed,
                     uint64_t Iters) {
  PgoGenConfig C;
  C.Iters = Iters;
  C.Seed = Seed;
  C.Instr.Interval = PgoInterval;
  if (Source == "brr")
    C.Instr.Framework = SamplingFramework::BrrBased;
  else if (Source == "cbs")
    C.Instr.Framework = SamplingFramework::CounterBased;
  PgoWorkload W = buildPgoWorkload(C);

  uint64_t BaseCycles = pipelineRoiCycles(W.Baseline);
  FuncRef BaseRef = funcRun(W.Baseline, W.ChecksumAddr);

  opt::ProfileMap Prof;
  double ProfileOverheadPct = 0;
  uint64_t ProfileInsts = 0;
  if (Source == "oracle") {
    BrrUnitDecider D;
    Prof = opt::collectOracleProfile(W.Baseline, D, PgoMaxSteps);
    ProfileInsts = BaseRef.Insts; // the oracle traces the full run
  } else if (Source == "brr" || Source == "cbs") {
    Machine Mach;
    BrrUnitDecider D;
    Interpreter I(W.Instrumented, Mach, D);
    RunStats S = I.run(PgoMaxSteps);
    ProfileInsts = S.Insts;
    std::vector<uint64_t> Counts(W.NumSites);
    for (size_t SI = 0; SI != W.NumSites; ++SI)
      Counts[SI] = Mach.memory().readU64(W.ProfileBase + 8 * SI);
    Prof = opt::profileFromSites(Counts, W.SiteBlocks);
    uint64_t InstrCycles = pipelineRoiCycles(W.Instrumented);
    ProfileOverheadPct = BaseCycles
                             ? 100.0 * (static_cast<double>(InstrCycles) -
                                        static_cast<double>(BaseCycles)) /
                                   static_cast<double>(BaseCycles)
                             : 0;
  }

  cfg::Module M = cfg::buildModule(W.Baseline);
  opt::LayoutStats LS = opt::optimizeLayout(M, Prof);
  cfg::EmitOptions EO;
  EO.ElideJumpToNext = true;
  cfg::EmitStats ES;
  Program Opt = cfg::emitProgram(M, EO, &ES);

  uint64_t OptCycles = pipelineRoiCycles(Opt);
  FuncRef OptRef = funcRun(Opt, W.ChecksumAddr);
  // Dynamic instruction counts differ legitimately (relinearization
  // inserts and elides unconditional jumps); the checksum is the
  // layout-invariant part of the execution.
  bool CheckOk = BaseRef.Halted && OptRef.Halted &&
                 OptRef.Checksum == BaseRef.Checksum;

  RunRecord R;
  R.param("profile", Source);
  R.param("seed", std::to_string(Seed));
  R.metric("base_roi_cycles", BaseCycles);
  R.metric("opt_roi_cycles", OptCycles);
  R.metric("speedup_pct",
           BaseCycles ? 100.0 * (static_cast<double>(BaseCycles) -
                                 static_cast<double>(OptCycles)) /
                            static_cast<double>(BaseCycles)
                      : 0,
           2);
  R.metric("profile_overhead_pct", ProfileOverheadPct, 2);
  R.metric("profile_insts", ProfileInsts);
  R.metric("check_ok", static_cast<uint64_t>(CheckOk));
  R.metric("hot_fallthroughs", static_cast<uint64_t>(LS.HotFallthroughs));
  R.metric("outlined_blocks",
           static_cast<uint64_t>(LS.ColdOutlined + LS.BrrOutlined));
  R.metric("inverted_branches", static_cast<uint64_t>(ES.InvertedBranches));
  return R;
}

ExperimentSpec makePgoLayout(const ExperimentOptions &O) {
  const uint64_t Iters = std::max<uint64_t>(3000 / O.Scale, 200);
  ExperimentSpec S;
  char Title[256];
  std::snprintf(Title, sizeof(Title),
                "pgo_layout - profile-guided layout: baseline vs optimized "
                "pipeline cycles on the pessimal-layout workload (%llu "
                "iterations, interval %llu, %zu seeds)",
                static_cast<unsigned long long>(Iters),
                static_cast<unsigned long long>(PgoInterval), PgoSeeds);
  S.Title = Title;
  S.Notes =
      "check_ok: optimized variant halted with the identical checksum "
      "(dynamic instruction\ncounts differ by design — relinearization "
      "inserts and elides jumps). profile_overhead_pct:\n"
      "instrumented vs baseline pipeline cycles\n(the cost of *collecting* "
      "the profile; oracle rows instead pay profile_insts of\nfunctional "
      "tracing). The verdict is PASS when the brr-profiled layout's cycle "
      "CI is\ndisjoint from and below the baseline's, and every "
      "self-check held.";

  for (const char *Src : PgoSources)
    for (size_t Seed = 0; Seed != PgoSeeds; ++Seed)
      S.Cells.push_back(
          {{"profile", Src}, {"seed", std::to_string(Seed + 1)}});

  S.Run = [Iters](const ParamSet &, size_t Index) {
    const std::string Source = PgoSources[Index / PgoSeeds];
    uint64_t Seed = Index % PgoSeeds + 1;
    return runPgoCell(Source, Seed, Iters);
  };

  S.Summarize = [](const std::vector<RunRecord> &Cells) {
    std::vector<RunRecord> Out;
    bool AllChecks = true;
    bool BrrSeparated = false;
    for (size_t SI = 0; SI != NumPgoSources; ++SI) {
      RunningStat Base, OptC, Speed;
      for (size_t Seed = 0; Seed != PgoSeeds; ++Seed) {
        const RunRecord &R = Cells[SI * PgoSeeds + Seed];
        Base.add(static_cast<double>(R.findMetric("base_roi_cycles")->U));
        OptC.add(static_cast<double>(R.findMetric("opt_roi_cycles")->U));
        Speed.add(R.findMetric("speedup_pct")->D);
        AllChecks = AllChecks && R.findMetric("check_ok")->U == 1;
      }
      // Disjoint 95% CIs with the optimized mean below the baseline mean.
      bool Separated =
          Base.mean() - Base.ci95HalfWidth() >
          OptC.mean() + OptC.ci95HalfWidth();
      if (std::string(PgoSources[SI]) == "brr")
        BrrSeparated = Separated;
      RunRecord V;
      V.param("profile", PgoSources[SI]);
      V.param("seed", "summary");
      V.metric("base_roi_cycles", Base.mean(), 1);
      V.metric("base_roi_cycles_ci95", Base.ci95HalfWidth(), 1);
      V.metric("opt_roi_cycles", OptC.mean(), 1);
      V.metric("opt_roi_cycles_ci95", OptC.ci95HalfWidth(), 1);
      V.metric("speedup_pct", Speed.mean(), 2);
      V.metric("ci_separated", static_cast<uint64_t>(Separated));
      Out.push_back(std::move(V));
    }
    RunRecord V;
    V.param("profile", "verdict");
    V.param("seed", "-");
    V.metric("checks_ok", static_cast<uint64_t>(AllChecks));
    V.metric("verdict",
             std::string(AllChecks && BrrSeparated ? "PASS" : "FAIL"));
    Out.push_back(std::move(V));
    return Out;
  };
  return S;
}

} // namespace

void registerPgoExperiments() {
  ExperimentRegistry &R = ExperimentRegistry::instance();
  R.add("pgo_layout",
        "Closed PGO loop: brr/counter/oracle profiles drive the layout "
        "optimizer on a pessimal-layout workload; baseline vs optimized "
        "pipeline cycles with profile-collection cost",
        makePgoLayout);
}

} // namespace exp
} // namespace bor
