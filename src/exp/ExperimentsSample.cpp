//===- exp/ExperimentsSample.cpp - Sampled-simulation validation ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `sample_error` experiment: for every Figure-13 framework arm it runs
/// the identical instrumented microbenchmark twice — once through the full
/// detailed Pipeline and once through the SampledRunner — and checks that
/// the sampled IPC and brr-overhead estimates land within the sampler's
/// own 95% confidence interval (plus a small bias margin for the interval
/// cold-start ramp) of the full-run values, while timing both so the
/// summary reports the sampled mode's wall-clock fraction. The two runs
/// share one program and the same default decider seed, so they execute
/// byte-identical instruction streams and differ only in how much of the
/// stream is cycle-timed.
///
/// tests/sample_validation.cmake gates CI on this experiment's verdict.
///
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"
#include "exp/Harness.h"
#include "workloads/AppGen.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

namespace bor {
namespace exp {

namespace {

/// Extra tolerance, in relative terms, beyond the sampler's CI: detailed
/// intervals start from a drained pipeline, so even with the pre-roll a
/// small systematic bias remains that no amount of sampling averages away.
constexpr double BiasMargin = 0.025;

struct SampleArm {
  const char *Name;
  SamplingFramework F;
  DuplicationMode Dup;
  bool Body;
};

constexpr SampleArm SampleArms[] = {
    {"cbs+inst (no-dup)", SamplingFramework::CounterBased,
     DuplicationMode::NoDuplication, true},
    {"cbs (no-dup)", SamplingFramework::CounterBased,
     DuplicationMode::NoDuplication, false},
    {"cbs+inst (full-dup)", SamplingFramework::CounterBased,
     DuplicationMode::FullDuplication, true},
    {"cbs (full-dup)", SamplingFramework::CounterBased,
     DuplicationMode::FullDuplication, false},
    {"brr+inst (no-dup)", SamplingFramework::BrrBased,
     DuplicationMode::NoDuplication, true},
    {"brr (no-dup)", SamplingFramework::BrrBased,
     DuplicationMode::NoDuplication, false},
    {"brr+inst (full-dup)", SamplingFramework::BrrBased,
     DuplicationMode::FullDuplication, true},
    {"brr (full-dup)", SamplingFramework::BrrBased,
     DuplicationMode::FullDuplication, false},
};

constexpr uint64_t SampleIntervals[] = {16, 1024};

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One workload measured both ways, program built once and timing taken
/// around the runs only (both modes pay the same build cost, which is not
/// part of the simulation-speed claim).
struct Comparison {
  double FullIpc = 0;
  double SampledIpc = 0;
  double IpcCi95 = 0;
  uint64_t FullRoi = 0;
  double SampledRoi = 0;
  uint64_t Intervals = 0;
  double FullMs = 0;
  double SampledMs = 0;
};

/// Runs \p P both ways and fills a Comparison; the program is built by the
/// caller (microbenchmark or application analogue), the measurement path
/// is identical.
Comparison measureBoth(const Program &P, const SamplingPlan &Plan) {
  Comparison Cmp;
  // Shared decoded image: decode cost is paid once, outside both timers.
  DecodedProgram Dec(P);
  double T0 = nowMs();
  Pipeline Pipe(Dec, PipelineConfig());
  RunResult Full = Pipe.run(1ULL << 40);
  double T1 = nowMs();
  SampledResult SR = runSampled(Dec, Plan, PipelineConfig());
  double T2 = nowMs();

  Cmp.FullMs = T1 - T0;
  Cmp.SampledMs = T2 - T1;
  Cmp.FullIpc = Full.Stats.ipc();
  Cmp.SampledIpc = SR.ipcMean();
  Cmp.IpcCi95 = SR.ipcCi95();
  Cmp.Intervals = SR.NumIntervals;
  if (Full.Markers.size() == 2)
    Cmp.FullRoi = Full.roiCycles();
  if (SR.Markers.size() >= 2)
    Cmp.SampledRoi = SR.estimatedCycles(SR.roiInsts());
  return Cmp;
}

Comparison compareRuns(const InstrumentationConfig &Instr, size_t Chars,
                       const SamplingPlan &Plan) {
  MicrobenchConfig C;
  C.Text.NumChars = Chars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  return measureBoth(MB.Prog, Plan);
}

/// The fig12-shaped cell: a DaCapo-style application analogue under
/// Full-Duplication instrumentation at period 1024 — the exact workload
/// shape Figure 12 times — validated the same way as the microbenchmark
/// arms.
Comparison compareAppRuns(SamplingFramework F, uint64_t Scale,
                          const SamplingPlan &Plan) {
  AppConfig C = dacapoAppAnalogues().front();
  C.NumTopCalls = std::max<uint64_t>(C.NumTopCalls / Scale, 500);
  C.Instr.Framework = F;
  C.Instr.Dup = DuplicationMode::FullDuplication;
  C.Instr.Interval = 1024;
  AppProgram P = buildApp(C);
  return measureBoth(P.Prog, Plan);
}

/// Computes the IPC- and overhead-agreement verdicts for one cell and
/// renders them as the cell's record. \p Base supplies the uninstrumented
/// reference both overhead ratios divide by.
RunRecord agreementRecord(const std::string &Series,
                          const std::string &Interval, const Comparison &Cmp,
                          const Comparison &Base) {
  // IPC agreement: CI half-width plus the bias margin, both in IPC units.
  double IpcTol = Cmp.IpcCi95 + BiasMargin * Cmp.FullIpc;
  bool IpcOk = std::fabs(Cmp.SampledIpc - Cmp.FullIpc) <= IpcTol;

  // Overhead agreement, in percentage points. Both the run's and the
  // baseline's sampled ROI carry a relative error of about ci/ipc; the
  // overhead ratio compounds them, so the tolerance propagates both plus
  // the bias margin on each.
  double FullOh = 100.0 * (static_cast<double>(Cmp.FullRoi) /
                               static_cast<double>(Base.FullRoi) -
                           1.0);
  double SampledOh = 100.0 * (Cmp.SampledRoi / Base.SampledRoi - 1.0);
  double RelRun =
      Cmp.SampledIpc > 0 ? Cmp.IpcCi95 / Cmp.SampledIpc + BiasMargin : 1;
  double RelBase =
      Base.SampledIpc > 0 ? Base.IpcCi95 / Base.SampledIpc + BiasMargin : 1;
  double OhTol = 100.0 * (RelRun + RelBase) * (1.0 + FullOh / 100.0);
  bool OhOk = std::fabs(SampledOh - FullOh) <= OhTol;

  RunRecord R;
  R.param("series", Series);
  R.param("interval", Interval);
  R.metric("full_ipc", Cmp.FullIpc, 3);
  R.metric("sampled_ipc", Cmp.SampledIpc, 3);
  R.metric("ipc_ci95", Cmp.IpcCi95, 4);
  R.metric("ipc_ok", static_cast<uint64_t>(IpcOk));
  R.metric("full_overhead_pct", FullOh, 2);
  R.metric("sampled_overhead_pct", SampledOh, 2);
  R.metric("overhead_tol_pp", OhTol, 2);
  R.metric("overhead_ok", static_cast<uint64_t>(OhOk));
  R.metric("sample_intervals", Cmp.Intervals);
  R.metric("full_ms", Cmp.FullMs, 1);
  R.metric("sampled_ms", Cmp.SampledMs, 1);
  return R;
}

ExperimentSpec makeSampleError(const ExperimentOptions &O) {
  const size_t Chars = std::max<size_t>(FigureChars / O.Scale, 2000);
  const uint64_t Scale = O.Scale;
  // Validation always compares against the sampled mode bor-bench would
  // use: the user's --sample-* plan if given, else the defaults.
  const SamplingPlan Plan = O.Plan;
  ExperimentSpec S;
  char Title[256];
  std::snprintf(Title, sizeof(Title),
                "sample_error - sampled vs full-run agreement on the "
                "Figure 13 grid\nplus a fig12-shaped app analogue (%zu "
                "characters; period %llu, warm %llu,\nmeasure %llu)",
                Chars, static_cast<unsigned long long>(Plan.PeriodInsts),
                static_cast<unsigned long long>(Plan.WarmupInsts),
                static_cast<unsigned long long>(Plan.MeasureInsts));
  S.Title = Title;
  S.Notes = "ok flags: sampled estimate within the sampler's own 95% CI "
            "(plus a 2.5% bias\nmargin) of the full run's value. The "
            "summary verdict is PASS only when every\ncell agrees and the "
            "sampled runs took <= 25% of the full runs' wall-clock.";

  auto Base = std::make_shared<Comparison>();
  S.Setup = [Base, Chars, Plan] {
    *Base = compareRuns(InstrumentationConfig(), Chars, Plan);
  };

  for (const SampleArm &A : SampleArms)
    for (uint64_t Interval : SampleIntervals)
      S.Cells.push_back(
          {{"series", A.Name}, {"interval", std::to_string(Interval)}});

  // The fig12-shaped application-analogue cell, validated like the
  // microbenchmark arms but against its own uninstrumented app baseline.
  constexpr size_t NumIntervals =
      sizeof(SampleIntervals) / sizeof(SampleIntervals[0]);
  constexpr size_t NumMicroCells =
      sizeof(SampleArms) / sizeof(SampleArms[0]) * NumIntervals;
  S.Cells.push_back({{"series", "app brr (full-dup)"}, {"interval", "1024"}});

  S.Run = [Base, Chars, Plan, Scale](const ParamSet &, size_t Index) {
    if (Index == NumMicroCells) {
      Comparison AppBase =
          compareAppRuns(SamplingFramework::None, Scale, Plan);
      Comparison Cmp =
          compareAppRuns(SamplingFramework::BrrBased, Scale, Plan);
      // The app baseline is private to this cell, so fold its wall-clock
      // into the cell's totals for the summary's speedup accounting.
      Cmp.FullMs += AppBase.FullMs;
      Cmp.SampledMs += AppBase.SampledMs;
      return agreementRecord("app brr (full-dup)", "1024", Cmp, AppBase);
    }
    const SampleArm &A = SampleArms[Index / NumIntervals];
    uint64_t Interval = SampleIntervals[Index % NumIntervals];
    InstrumentationConfig Instr;
    Instr.Framework = A.F;
    Instr.Dup = A.Dup;
    Instr.Interval = Interval;
    Instr.IncludeBody = A.Body;
    Comparison Cmp = compareRuns(Instr, Chars, Plan);
    return agreementRecord(A.Name, std::to_string(Interval), Cmp, *Base);
  };

  S.Summarize = [Base](const std::vector<RunRecord> &Cells) {
    uint64_t Ok = 0;
    double FullMs = Base->FullMs, SampledMs = Base->SampledMs;
    for (const RunRecord &R : Cells) {
      Ok += R.findMetric("ipc_ok")->U && R.findMetric("overhead_ok")->U;
      FullMs += R.findMetric("full_ms")->D;
      SampledMs += R.findMetric("sampled_ms")->D;
    }
    double WallPct = FullMs > 0 ? 100.0 * SampledMs / FullMs : 100.0;
    bool Pass = Ok == Cells.size() && WallPct <= 25.0;
    RunRecord V;
    V.param("series", "summary");
    V.metric("cells_ok", Ok);
    V.metric("cells_total", static_cast<uint64_t>(Cells.size()));
    V.metric("sampled_wallclock_pct", WallPct, 1);
    V.metric("verdict", std::string(Pass ? "PASS" : "FAIL"));
    return std::vector<RunRecord>{V};
  };
  return S;
}

} // namespace

void registerSampleExperiments() {
  ExperimentRegistry &R = ExperimentRegistry::instance();
  R.add("sample_error",
        "Sampled-simulation validation: sampled vs full-run IPC and "
        "overhead on the Figure 13 grid plus a fig12-shaped application "
        "analogue, with wall-clock speedup",
        makeSampleError);
}

} // namespace exp
} // namespace bor
