//===- exp/ExperimentsTiming.cpp - Timing-simulation experiments ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registered experiments whose cells run the cycle-level timing model:
/// the Figure 2 cost decomposition, the Figure 12 application overheads,
/// the Figure 13/14 interval sweeps, and the Section 3.3 design ablation.
/// Each cell builds its own program and Pipeline, so cells parallelize
/// freely; shared baselines are measured once in the serial Setup stage.
///
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"
#include "exp/Experiments.h"
#include "exp/Harness.h"
#include "workloads/AppGen.h"

#include <cstdio>
#include <memory>

namespace bor {
namespace exp {

void registerAccuracyExperiments(); // ExperimentsAccuracy.cpp
void registerSampleExperiments();   // ExperimentsSample.cpp
void registerPgoExperiments();      // ExperimentsPgo.cpp
void registerSvcExperiments();      // ExperimentsSvc.cpp

namespace {

size_t scaledChars(const ExperimentOptions &O) {
  size_t Chars = FigureChars / O.Scale;
  return Chars < 2000 ? 2000 : Chars;
}

double overheadPct(uint64_t Cycles, uint64_t Base) {
  return 100.0 * (static_cast<double>(Cycles) - static_cast<double>(Base)) /
         static_cast<double>(Base);
}

/// Appends the per-cell pipeline metrics the JSON trajectory captures for
/// every timed run: total cycles, IPC, and the flush-cycle decomposition.
/// Sampled runs additionally report the estimate's provenance (interval
/// count and IPC confidence interval); full runs emit exactly the fields
/// they always did.
void addPipelineMetrics(RunRecord &R, const MicroRun &Run) {
  R.metric("roi_cycles", Run.RoiCycles);
  R.metric("cycles", Run.Stats.Cycles);
  R.metric("ipc", Run.Stats.ipc(), 2);
  R.metric("frontend_flush_cycles", Run.Stats.FrontendFlushCycles);
  R.metric("backend_flush_cycles", Run.Stats.BackendFlushCycles);
  R.metric("icache_stall_cycles", Run.Stats.FetchIcacheStallCycles);
  if (Run.Sampled) {
    R.metric("sample_intervals", Run.SampleIntervals);
    R.metric("ipc_ci95", Run.IpcCi95, 4);
    // Self-profiling phase wall-clock (the only nondeterministic metrics
    // in a record, and only in sampled mode — full runs stay byte-stable).
    R.metric("ff_ms", Run.FfMs, 1);
    R.metric("warm_ms", Run.WarmMs, 1);
    R.metric("measure_ms", Run.MeasureMs, 1);
  }
}

//===----------------------------------------------------------------------===//
// Figure 13: overhead vs sampling interval, eight framework arms.
//===----------------------------------------------------------------------===//

struct MicroArm {
  const char *Name;
  SamplingFramework F;
  DuplicationMode Dup;
  bool Body;
};

constexpr MicroArm Fig13Arms[] = {
    {"cbs+inst (no-dup)", SamplingFramework::CounterBased,
     DuplicationMode::NoDuplication, true},
    {"cbs (no-dup)", SamplingFramework::CounterBased,
     DuplicationMode::NoDuplication, false},
    {"cbs+inst (full-dup)", SamplingFramework::CounterBased,
     DuplicationMode::FullDuplication, true},
    {"cbs (full-dup)", SamplingFramework::CounterBased,
     DuplicationMode::FullDuplication, false},
    {"brr+inst (no-dup)", SamplingFramework::BrrBased,
     DuplicationMode::NoDuplication, true},
    {"brr (no-dup)", SamplingFramework::BrrBased,
     DuplicationMode::NoDuplication, false},
    {"brr+inst (full-dup)", SamplingFramework::BrrBased,
     DuplicationMode::FullDuplication, true},
    {"brr (full-dup)", SamplingFramework::BrrBased,
     DuplicationMode::FullDuplication, false},
};

ExperimentSpec makeFig13(const ExperimentOptions &O) {
  const size_t Chars = scaledChars(O);
  const bool Sample = O.Sample;
  const SamplingPlan Plan = O.Plan;
  const telemetry::TelemetrySink *Tel = O.Telemetry;
  ckpt::LibraryPool *Pool = O.CkptPool;
  const unsigned Regions = O.CkptRegions;
  ExperimentSpec S;
  char Title[256];
  std::snprintf(Title, sizeof(Title),
                "Figure 13 - microbenchmark overhead vs sampling interval\n"
                "(percent over uninstrumented baseline; %zu characters; "
                "'+inst' includes the instrumentation bodies)",
                Chars);
  S.Title = Title;
  S.Notes = "paper shape: all curves fall with the interval; both brr "
            "curves drop an order of\nmagnitude below the counter-based "
            "ones above ~64; Full-Duplication lowers both.";

  auto Base = std::make_shared<uint64_t>(0);
  S.Setup = [Base, Chars, Sample, Plan, Tel, Pool, Regions] {
    *Base = runMicrobench(InstrumentationConfig(), Chars, PipelineConfig(),
                          Sample ? &Plan : nullptr, Tel, Pool, Regions)
                .RoiCycles;
  };

  std::vector<uint64_t> Intervals = figureIntervals();
  for (const MicroArm &A : Fig13Arms)
    for (uint64_t Interval : Intervals)
      S.Cells.push_back(
          {{"series", A.Name}, {"interval", std::to_string(Interval)}});

  size_t NumIntervals = Intervals.size();
  S.Run = [Base, Chars, Intervals, NumIntervals, Sample, Plan, Tel, Pool,
           Regions](const ParamSet &, size_t Index) {
    const MicroArm &A = Fig13Arms[Index / NumIntervals];
    uint64_t Interval = Intervals[Index % NumIntervals];
    MicroRun Run =
        runMicrobench(microConfig(A.F, A.Dup, Interval, A.Body), Chars,
                      PipelineConfig(), Sample ? &Plan : nullptr, Tel, Pool,
                      Regions);
    RunRecord R;
    R.param("series", A.Name);
    R.param("interval", std::to_string(Interval));
    R.metric("overhead_pct", overheadPct(Run.RoiCycles, *Base), 1);
    addPipelineMetrics(R, Run);
    return R;
  };

  S.Summarize = [Base, Chars](const std::vector<RunRecord> &) {
    RunRecord Baseline;
    Baseline.param("series", "baseline (uninstrumented)");
    Baseline.metric("roi_cycles", *Base);
    Baseline.metric("cycles_per_char",
                    static_cast<double>(*Base) / static_cast<double>(Chars),
                    2);
    return std::vector<RunRecord>{Baseline};
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Figure 14: added cycles per dynamically-encountered sampling site.
//===----------------------------------------------------------------------===//

struct Fig14Arm {
  const char *Name;
  SamplingFramework F;
  DuplicationMode Dup;
  bool Body;
  uint64_t FixedInterval; ///< 0 = sweep the figure intervals.
};

constexpr Fig14Arm Fig14Arms[] = {
    {"cbs+inst", SamplingFramework::CounterBased,
     DuplicationMode::FullDuplication, true, 0},
    {"cbs", SamplingFramework::CounterBased,
     DuplicationMode::FullDuplication, false, 0},
    {"brr+inst", SamplingFramework::BrrBased,
     DuplicationMode::FullDuplication, true, 0},
    {"brr", SamplingFramework::BrrBased, DuplicationMode::FullDuplication,
     false, 0},
    // The paper's reference point: full (unsampled) instrumentation.
    {"full-inst (reference)", SamplingFramework::Full,
     DuplicationMode::NoDuplication, true, 1024},
};

ExperimentSpec makeFig14(const ExperimentOptions &O) {
  const size_t Chars = scaledChars(O);
  const bool Sample = O.Sample;
  const SamplingPlan Plan = O.Plan;
  const telemetry::TelemetrySink *Tel = O.Telemetry;
  ckpt::LibraryPool *Pool = O.CkptPool;
  const unsigned Regions = O.CkptRegions;
  ExperimentSpec S;
  S.Title = "Figure 14 - average added cycles per sampling site "
            "(Full-Duplication)";
  S.Notes = "paper shape: brr's per-site cost falls fast with the "
            "interval (50% costs ~3.19\ncycles/site); the counter "
            "framework's floor is far higher; above interval 64 brr\nis "
            "10-20x cheaper per site. Reference: full instrumentation "
            "adds ~4.3 cycles/site.";

  auto Baseline = std::make_shared<MicroRun>();
  S.Setup = [Baseline, Chars, Sample, Plan, Tel, Pool, Regions] {
    *Baseline = runMicrobench(InstrumentationConfig(), Chars,
                              PipelineConfig(), Sample ? &Plan : nullptr,
                              Tel, Pool, Regions);
  };

  struct Def {
    const Fig14Arm *Arm;
    uint64_t Interval;
  };
  auto Defs = std::make_shared<std::vector<Def>>();
  for (const Fig14Arm &A : Fig14Arms) {
    if (A.FixedInterval) {
      Defs->push_back({&A, A.FixedInterval});
      continue;
    }
    for (uint64_t Interval : figureIntervals())
      Defs->push_back({&A, Interval});
  }
  for (const Def &D : *Defs)
    S.Cells.push_back({{"series", D.Arm->Name},
                       {"interval", std::to_string(D.Interval)}});

  S.Run = [Baseline, Chars, Defs, Sample, Plan, Tel, Pool,
           Regions](const ParamSet &, size_t Index) {
    const Def &D = (*Defs)[Index];
    const Fig14Arm &A = *D.Arm;
    MicroRun Run =
        runMicrobench(microConfig(A.F, A.Dup, D.Interval, A.Body), Chars,
                      PipelineConfig(), Sample ? &Plan : nullptr, Tel, Pool,
                      Regions);
    double PerSite = (static_cast<double>(Run.RoiCycles) -
                      static_cast<double>(Baseline->RoiCycles)) /
                     static_cast<double>(Baseline->DynamicSiteVisits);
    RunRecord R;
    R.param("series", A.Name);
    R.param("interval", std::to_string(D.Interval));
    R.metric("cycles_per_site", PerSite, 2);
    addPipelineMetrics(R, Run);
    return R;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Figure 2: fixed (framework) vs variable (instrumentation) cost.
//===----------------------------------------------------------------------===//

ExperimentSpec makeFig02(const ExperimentOptions &O) {
  const size_t Chars = scaledChars(O);
  const bool Sample = O.Sample;
  const SamplingPlan Plan = O.Plan;
  const telemetry::TelemetrySink *Tel = O.Telemetry;
  ckpt::LibraryPool *Pool = O.CkptPool;
  const unsigned Regions = O.CkptRegions;
  ExperimentSpec S;
  char Title[160];
  std::snprintf(Title, sizeof(Title),
                "Figure 2 - fixed vs variable cost decomposition "
                "(No-Duplication, %zu chars)",
                Chars);
  S.Title = Title;
  S.Notes = "the variable component scales ~1/interval for both "
            "frameworks; the fixed\ncomponent is the framework artifact "
            "brr eliminates.";

  auto Base = std::make_shared<uint64_t>(0);
  S.Setup = [Base, Chars, Sample, Plan, Tel, Pool, Regions] {
    *Base = runMicrobench(InstrumentationConfig(), Chars, PipelineConfig(),
                          Sample ? &Plan : nullptr, Tel, Pool, Regions)
                .RoiCycles;
  };

  const SamplingFramework Frameworks[] = {SamplingFramework::CounterBased,
                                          SamplingFramework::BrrBased};
  const uint64_t Intervals[] = {16, 128, 1024};
  for (SamplingFramework F : Frameworks)
    for (uint64_t Interval : Intervals)
      S.Cells.push_back({{"framework", frameworkName(F)},
                         {"interval", std::to_string(Interval)}});

  S.Run = [Base, Chars, Sample, Plan, Tel, Pool, Regions](const ParamSet &,
                                                          size_t Index) {
    const SamplingFramework Frameworks[] = {SamplingFramework::CounterBased,
                                            SamplingFramework::BrrBased};
    const uint64_t Intervals[] = {16, 128, 1024};
    SamplingFramework F = Frameworks[Index / 3];
    uint64_t Interval = Intervals[Index % 3];
    const SamplingPlan *P = Sample ? &Plan : nullptr;
    uint64_t FwOnly =
        runMicrobench(
            microConfig(F, DuplicationMode::NoDuplication, Interval, false),
            Chars, PipelineConfig(), P, Tel, Pool, Regions)
            .RoiCycles;
    MicroRun Total = runMicrobench(
        microConfig(F, DuplicationMode::NoDuplication, Interval, true),
        Chars, PipelineConfig(), P, Tel, Pool, Regions);
    double TotalPct = overheadPct(Total.RoiCycles, *Base);
    double FixedPct = overheadPct(FwOnly, *Base);
    RunRecord R;
    R.param("framework", frameworkName(F));
    R.param("interval", std::to_string(Interval));
    R.metric("total_pct", TotalPct, 2);
    R.metric("fixed_pct", FixedPct, 2);
    R.metric("variable_pct", TotalPct - FixedPct, 2);
    addPipelineMetrics(R, Total);
    return R;
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Figure 12: application-analogue overheads.
//===----------------------------------------------------------------------===//

struct AppRun {
  uint64_t RoiCycles = 0;
  PipelineStats Stats;
};

AppRun appRoi(AppConfig C, SamplingFramework F,
              const SamplingPlan *Plan = nullptr,
              const telemetry::TelemetrySink *Tel = nullptr,
              ckpt::LibraryPool *Pool = nullptr, unsigned Regions = 0) {
  C.Instr.Framework = F;
  C.Instr.Dup = DuplicationMode::FullDuplication;
  C.Instr.Interval = 1024;
  AppProgram P = buildApp(C);
  // One decoded image per cell, shared by the sampled and full-run paths.
  DecodedProgram Dec(P.Prog);
  if (Plan) {
    SampledResult SR = runSampledMaybeLibrary(Dec, *Plan, PipelineConfig(),
                                              Tel, Pool, Regions);
    if (SR.NumIntervals != 0 && SR.Markers.size() >= 2) {
      AppRun R;
      R.RoiCycles =
          static_cast<uint64_t>(SR.estimatedCycles(SR.roiInsts()) + 0.5);
      R.Stats = SR.Detailed;
      R.Stats.Insts = SR.TotalInsts; // ipc() then reports the estimate
      R.Stats.Cycles =
          static_cast<uint64_t>(SR.estimatedCycles(SR.TotalInsts) + 0.5);
      return R;
    }
    // Stream too short for a sample: fall through to a full run.
  }
  Pipeline Pipe(Dec, PipelineConfig());
  Pipe.setTelemetry(Tel);
  RunResult Result = Pipe.run(1ULL << 40);
  return {Result.roiCycles(), Result.Stats};
}

ExperimentSpec makeFig12(const ExperimentOptions &O) {
  const bool Sample = O.Sample;
  const SamplingPlan Plan = O.Plan;
  const telemetry::TelemetrySink *Tel = O.Telemetry;
  ckpt::LibraryPool *Pool = O.CkptPool;
  const unsigned Regions = O.CkptRegions;
  ExperimentSpec S;
  S.Title = "Figure 12 - sampling framework overhead on application "
            "analogues\n(Full-Duplication, sampling period 1024, timing "
            "simulation; percent over\nuninstrumented baseline)";
  S.Notes = "paper: cbs averages ~4.97%, brr ~0.64% on weakly-optimized "
            "Jikes builds; the\nreproduction preserves the ordering and "
            "the multi-x gap.";

  auto Apps = std::make_shared<std::vector<AppConfig>>(dacapoAppAnalogues());
  for (AppConfig &App : *Apps)
    App.NumTopCalls = std::max<uint64_t>(App.NumTopCalls / O.Scale, 500);
  for (const AppConfig &App : *Apps)
    S.Cells.push_back({{"benchmark", App.Name}});

  S.Run = [Apps, Sample, Plan, Tel, Pool, Regions](const ParamSet &,
                                                   size_t Index) {
    const AppConfig &App = (*Apps)[Index];
    const SamplingPlan *P = Sample ? &Plan : nullptr;
    AppRun Base = appRoi(App, SamplingFramework::None, P, Tel, Pool, Regions);
    AppRun Cbs =
        appRoi(App, SamplingFramework::CounterBased, P, Tel, Pool, Regions);
    AppRun Brr =
        appRoi(App, SamplingFramework::BrrBased, P, Tel, Pool, Regions);
    RunRecord R;
    R.param("benchmark", App.Name);
    R.metric("baseline_cycles", Base.RoiCycles);
    R.metric("cbs_pct", overheadPct(Cbs.RoiCycles, Base.RoiCycles), 2);
    R.metric("brr_pct", overheadPct(Brr.RoiCycles, Base.RoiCycles), 2);
    R.metric("baseline_ipc", Base.Stats.ipc(), 2);
    return R;
  };

  S.Summarize = [](const std::vector<RunRecord> &Cells) {
    double Cbs = 0, Brr = 0;
    for (const RunRecord &R : Cells) {
      Cbs += R.findMetric("cbs_pct")->D;
      Brr += R.findMetric("brr_pct")->D;
    }
    double N = static_cast<double>(Cells.size());
    RunRecord Avg;
    Avg.param("benchmark", "average");
    Avg.metric("cbs_pct", Cbs / N, 2);
    Avg.metric("brr_pct", Brr / N, 2);
    return std::vector<RunRecord>{Avg};
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Section 3.3 ablation: pipeline integration, counter placement, oracle
// prediction.
//===----------------------------------------------------------------------===//

ExperimentSpec makeAblation(const ExperimentOptions &O) {
  const size_t Chars = scaledChars(O);
  const bool Sample = O.Sample;
  const SamplingPlan Plan = O.Plan;
  const telemetry::TelemetrySink *Tel = O.Telemetry;
  ckpt::LibraryPool *Pool = O.CkptPool;
  const unsigned Regions = O.CkptRegions;
  ExperimentSpec S;
  S.Title = "Ablation - branch-on-random design decisions "
            "(No-Duplication, framework-only)";
  S.Notes =
      "groups: 'design' forces brr through progressively less integrated "
      "pipeline\npaths (Section 3.3); 'counter-placement' compares the "
      "counter's home (Section 2\nitems 3-4); 'oracle' re-measures added "
      "cycles/char under perfect branch\nprediction - the counter chain's "
      "serialization is *more* exposed there, while\nbrr's residual cost "
      "is pure fetch bandwidth and vanishes at low rates.";

  struct Machines {
    PipelineConfig Default;
    PipelineConfig Backend;
    PipelineConfig HoldsRob;
    PipelineConfig Trap;
    PipelineConfig Oracle;
    uint64_t Base = 0;
    uint64_t OracleBase = 0;
  };
  auto M = std::make_shared<Machines>();
  M->Backend.BrrAsBackendBranch = true;
  M->HoldsRob.BrrCommitsAtDecode = false;
  M->Trap.BrrTrapCycles = 300; // Section 3.4's SIGILL emulation fallback
  M->Oracle.PerfectBranchPrediction = true;

  S.Setup = [M, Chars, Sample, Plan, Tel, Pool, Regions] {
    const SamplingPlan *P = Sample ? &Plan : nullptr;
    M->Base = runMicrobench(InstrumentationConfig(), Chars, M->Default, P,
                            Tel, Pool, Regions)
                  .RoiCycles;
    M->OracleBase = runMicrobench(InstrumentationConfig(), Chars, M->Oracle,
                                  P, Tel, Pool, Regions)
                        .RoiCycles;
  };

  struct Def {
    std::string Group;
    std::string Arm;
    uint64_t Interval;
    InstrumentationConfig Instr;
    const PipelineConfig *Machine; ///< offset into *M; set per cell below
    bool PerChar;                  ///< report added cycles/char, not %
    bool OracleBaseline;
  };
  auto Defs = std::make_shared<std::vector<Def>>();
  const uint64_t Intervals[] = {16, 1024};

  // Group 1: pipeline-integration design arms (brr framework-only).
  const std::pair<const char *, const PipelineConfig *> DesignArms[] = {
      {"brr (proposed: decode-resolved)", &M->Default},
      {"brr held in ROB until commit", &M->HoldsRob},
      {"brr as back-end branch", &M->Backend},
      {"brr trap-emulated (SIGILL, S3.4)", &M->Trap},
  };
  for (const auto &[Name, Machine] : DesignArms)
    for (uint64_t Interval : Intervals)
      Defs->push_back({"design", Name, Interval,
                       microConfig(SamplingFramework::BrrBased,
                                   DuplicationMode::NoDuplication, Interval,
                                   false),
                       Machine, false, false});

  // Group 2: counter placement (memory vs register vs none-at-all/brr).
  for (uint64_t Interval : Intervals) {
    InstrumentationConfig Mem =
        microConfig(SamplingFramework::CounterBased,
                    DuplicationMode::NoDuplication, Interval, false);
    InstrumentationConfig Reg = Mem;
    Reg.CounterPlacement = CounterHome::Register;
    InstrumentationConfig Brr =
        microConfig(SamplingFramework::BrrBased,
                    DuplicationMode::NoDuplication, Interval, false);
    Defs->push_back({"counter-placement", "cbs, counter in memory",
                     Interval, Mem, &M->Default, false, false});
    Defs->push_back({"counter-placement", "cbs, counter in a register",
                     Interval, Reg, &M->Default, false, false});
    Defs->push_back({"counter-placement", "brr (no counter at all)",
                     Interval, Brr, &M->Default, false, false});
  }

  // Group 3: real machine vs oracle prediction, added cycles per char.
  for (SamplingFramework F :
       {SamplingFramework::CounterBased, SamplingFramework::BrrBased})
    for (uint64_t Interval : Intervals)
      for (bool Oracle : {false, true}) {
        std::string Arm = std::string(frameworkName(F)) +
                          (Oracle ? ", oracle prediction" : ", real machine");
        Defs->push_back({"oracle", Arm, Interval,
                         microConfig(F, DuplicationMode::NoDuplication,
                                     Interval, false),
                         Oracle ? &M->Oracle : &M->Default, true, Oracle});
      }

  for (const Def &D : *Defs)
    S.Cells.push_back({{"group", D.Group},
                       {"arm", D.Arm},
                       {"interval", std::to_string(D.Interval)}});

  S.Run = [M, Defs, Chars, Sample, Plan, Tel, Pool, Regions](const ParamSet &,
                                                             size_t Index) {
    const Def &D = (*Defs)[Index];
    MicroRun Run = runMicrobench(D.Instr, Chars, *D.Machine,
                                 Sample ? &Plan : nullptr, Tel, Pool,
                                 Regions);
    uint64_t Base = D.OracleBaseline ? M->OracleBase : M->Base;
    RunRecord R;
    R.param("group", D.Group);
    R.param("arm", D.Arm);
    R.param("interval", std::to_string(D.Interval));
    if (D.PerChar)
      R.metric("added_cycles_per_char",
               (static_cast<double>(Run.RoiCycles) -
                static_cast<double>(Base)) /
                   static_cast<double>(Chars),
               2);
    else
      R.metric("overhead_pct", overheadPct(Run.RoiCycles, Base), 2);
    addPipelineMetrics(R, Run);
    return R;
  };
  return S;
}

} // namespace

void registerAllExperiments() {
  static bool Registered = false;
  if (Registered)
    return;
  Registered = true;

  registerAccuracyExperiments();
  registerSampleExperiments();
  registerPgoExperiments();
  registerSvcExperiments();

  ExperimentRegistry &R = ExperimentRegistry::instance();
  R.add("fig02",
        "Figure 2: fixed vs variable sampling-cost decomposition on the "
        "microbenchmark",
        makeFig02);
  R.add("fig12",
        "Figure 12: framework overhead on the application analogues "
        "(timing simulation)",
        makeFig12);
  R.add("fig13",
        "Figure 13: microbenchmark overhead vs sampling interval, eight "
        "framework arms",
        makeFig13);
  R.add("fig14",
        "Figure 14: average added cycles per sampling site, plus the "
        "full-instrumentation reference",
        makeFig14);
  R.add("ablation",
        "Section 3.3 ablation: pipeline integration, counter placement, "
        "oracle prediction",
        makeAblation);
}

} // namespace exp
} // namespace bor
