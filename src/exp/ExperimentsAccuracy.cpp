//===- exp/ExperimentsAccuracy.cpp - Trace-level accuracy experiments ----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registered experiments whose cells run at trace level (sampling
/// policies over invocation streams, the Section 4.1 methodology):
/// Figures 9/10 and the Section 4.2 LFSR-configuration sensitivity sweep.
///
//===----------------------------------------------------------------------===//

#include "core/BrrUnit.h"
#include "exp/Experiment.h"
#include "exp/Harness.h"
#include "lfsr/TapCatalog.h"
#include "profile/Accuracy.h"
#include "profile/SamplingPolicy.h"
#include "support/Stats.h"

#include <cstdio>
#include <memory>

namespace bor {
namespace exp {

namespace {

/// The fixed master seed behind the Figure-9/10 brr seed sweep.
constexpr uint64_t FigureBrrSeed = 0x2c9277b5;

//===----------------------------------------------------------------------===//
// Figures 9 and 10: profile accuracy across the DaCapo-analogue streams.
//===----------------------------------------------------------------------===//

ExperimentSpec makeAccuracyFigure(const ExperimentOptions &O,
                                  const char *Figure, uint64_t Interval) {
  ExperimentSpec S;
  char Title[256];
  std::snprintf(Title, sizeof(Title),
                "%s - sampling accuracy at interval %llu (percent "
                "overlap)\n(DaCapo-analogue streams, invocation counts "
                "scaled 1/%llu of the paper's)",
                Figure, static_cast<unsigned long long>(Interval),
                static_cast<unsigned long long>(5 * O.Scale));
  S.Title = Title;

  auto Models =
      std::make_shared<std::vector<BenchmarkModel>>(dacapoAnalogues(5 * O.Scale));
  for (const BenchmarkModel &M : *Models)
    S.Cells.push_back(
        {{"benchmark", M.Name},
         {"invocations", std::to_string(M.Invocations)}});

  S.Run = [Models, Interval](const ParamSet &, size_t Index) {
    const BenchmarkModel &M = (*Models)[Index];
    AccuracyRow Row = runAccuracy(M, Interval, FigureBrrSeed);
    RunRecord R;
    R.param("benchmark", M.Name);
    R.metric("invocations", static_cast<uint64_t>(M.Invocations));
    R.metric("sw_count", Row.SwCount, 2);
    R.metric("hw_count", Row.HwCount, 2);
    R.metric("random_mean", Row.Random, 2);
    R.metric("seed_spread", Row.RandomSpread, 2);
    return R;
  };

  S.Summarize = [](const std::vector<RunRecord> &Cells) {
    double Sw = 0, Hw = 0, Rand = 0;
    for (const RunRecord &R : Cells) {
      Sw += R.findMetric("sw_count")->D;
      Hw += R.findMetric("hw_count")->D;
      Rand += R.findMetric("random_mean")->D;
    }
    double N = static_cast<double>(Cells.size());
    RunRecord Avg;
    Avg.param("benchmark", "average");
    Avg.metric("sw_count", Sw / N, 2);
    Avg.metric("hw_count", Hw / N, 2);
    Avg.metric("random_mean", Rand / N, 2);
    return std::vector<RunRecord>{Avg};
  };
  return S;
}

//===----------------------------------------------------------------------===//
// Section 4.2: LFSR tap/seed sensitivity and the AND-bit-selection
// correlation ablation.
//===----------------------------------------------------------------------===//

/// Accuracy of brr sampling on the jython analogue with a caller-supplied
/// unit configuration.
double brrAccuracy(const BenchmarkModel &Model, uint64_t Interval,
                   const BrrUnitConfig &Cfg) {
  MethodProfile Full(Model.NumMethods);
  MethodProfile Sampled(Model.NumMethods);
  BrrPolicy Policy(Interval, Cfg);
  InvocationStream Stream(Model);
  while (!Stream.done()) {
    uint32_t Id = Stream.next();
    Full.record(Id);
    if (Policy.sample())
      Sampled.record(Id);
  }
  return overlapAccuracy(Full, Sampled);
}

ExperimentSpec makeSensLfsr(const ExperimentOptions &O) {
  constexpr uint64_t Interval = 1024;
  const uint64_t SeedSweep[] = {0xace1, 0xbeef, 0x1234,
                                0x777,  0xfedc, 0x2c92};

  ExperimentSpec S;
  S.Title = "Section 4.2 - LFSR configuration sensitivity and AND-input "
            "selection\n(jython analogue, interval 1024; 'and-bits' rows "
            "use freq=25%)";
  S.Notes = "paper: tap-set variation is within seed-to-seed noise (see "
            "the summary rows);\nadjacent AND bits give ~50% conditional "
            "take, spacing restores independence,\nand profiling accuracy "
            "is robust to either.";

  // A shorter stream keeps the tap/seed sweep affordable.
  BenchmarkModel Jython = dacapoAnalogues(5 * O.Scale)[5];
  Jython.Invocations /= 4;
  const uint64_t CorrSamples = 4000000 / O.Scale;

  // Cell definitions, in report order.
  struct Def {
    std::string Group;
    std::string Arm;
    std::string Detail; ///< polynomial taps / seed / policy description
    std::function<RunRecord()> Measure;
  };
  auto Defs = std::make_shared<std::vector<Def>>();

  for (const TapSet &T : paperSensitivityTapSets()) {
    std::string Poly;
    for (unsigned P : T.PolyTaps)
      Poly += (Poly.empty() ? "" : ",") + std::to_string(P);
    Defs->push_back({"taps", T.Name, Poly, [Jython, &T]() {
                       BrrUnitConfig Cfg;
                       Cfg.LfsrWidth = 32;
                       Cfg.TapMask = T.makeLfsr().tapMask();
                       Cfg.Seed = 0xace1;
                       RunRecord R;
                       R.metric("accuracy",
                                brrAccuracy(Jython, Interval, Cfg), 3);
                       return R;
                     }});
  }
  for (uint64_t Seed : SeedSweep) {
    char Hex[32];
    std::snprintf(Hex, sizeof(Hex), "0x%llx",
                  static_cast<unsigned long long>(Seed));
    Defs->push_back({"seed", Hex, "", [Jython, Seed]() {
                       BrrUnitConfig Cfg;
                       Cfg.LfsrWidth = 32;
                       Cfg.TapMask =
                           paperSensitivityTapSets()[0].makeLfsr().tapMask();
                       Cfg.Seed = Seed;
                       RunRecord R;
                       R.metric("accuracy",
                                brrAccuracy(Jython, Interval, Cfg), 3);
                       return R;
                     }});
  }
  for (BitSelectPolicy Policy :
       {BitSelectPolicy::Contiguous, BitSelectPolicy::Spaced}) {
    Defs->push_back(
        {"and-bits", bitSelectPolicyName(Policy), "",
         [Jython, Policy, CorrSamples]() {
           BrrUnitConfig Cfg;
           Cfg.Policy = Policy;
           BrrUnit Unit(Cfg);
           FreqCode Quarter(1);
           uint64_t Taken = 0, Pairs = 0, PairTaken = 0;
           bool Prev = Unit.evaluate(Quarter);
           for (uint64_t I = 0; I != CorrSamples; ++I) {
             bool Cur = Unit.evaluate(Quarter);
             Taken += Cur;
             if (Prev) {
               ++Pairs;
               PairTaken += Cur;
             }
             Prev = Cur;
           }
           BrrUnitConfig AccCfg;
           AccCfg.Policy = Policy;
           RunRecord R;
           R.metric("marginal_taken_pct",
                    100.0 * static_cast<double>(Taken) /
                        static_cast<double>(CorrSamples),
                    2);
           R.metric("cond_taken_pct",
                    100.0 * static_cast<double>(PairTaken) /
                        static_cast<double>(Pairs),
                    2);
           R.metric("accuracy", brrAccuracy(Jython, Interval, AccCfg), 3);
           return R;
         }});
  }

  for (const Def &D : *Defs)
    S.Cells.push_back(
        {{"group", D.Group}, {"arm", D.Arm}, {"detail", D.Detail}});

  S.Run = [Defs](const ParamSet &, size_t Index) {
    const Def &D = (*Defs)[Index];
    RunRecord Measured = D.Measure();
    RunRecord R;
    R.param("group", D.Group);
    R.param("arm", D.Arm);
    R.param("detail", D.Detail);
    R.Metrics = std::move(Measured.Metrics);
    return R;
  };

  S.Summarize = [](const std::vector<RunRecord> &Cells) {
    RunningStat TapSpread, SeedSpread;
    for (const RunRecord &R : Cells) {
      const std::string &Group = *R.findParam("group");
      if (Group == "taps")
        TapSpread.add(R.findMetric("accuracy")->D);
      else if (Group == "seed")
        SeedSpread.add(R.findMetric("accuracy")->D);
    }
    double TapDelta = TapSpread.max() - TapSpread.min();
    double SeedDelta = SeedSpread.max() - SeedSpread.min();
    RunRecord Taps;
    Taps.param("group", "taps");
    Taps.param("arm", "spread (max-min)");
    Taps.metric("accuracy", TapDelta, 3);
    RunRecord Seeds;
    Seeds.param("group", "seed");
    Seeds.param("arm", "spread (max-min)");
    Seeds.metric("accuracy", SeedDelta, 3);
    RunRecord Verdict;
    Verdict.param("group", "verdict");
    Verdict.param("arm", "tap spread within seed noise");
    Verdict.metric("result", std::string(TapDelta <= SeedDelta + 0.5
                                             ? "reproduced"
                                             : "NOT reproduced"));
    return std::vector<RunRecord>{Taps, Seeds, Verdict};
  };
  return S;
}

} // namespace

void registerAccuracyExperiments() {
  ExperimentRegistry &R = ExperimentRegistry::instance();
  R.add("fig09",
        "Figure 9: sampling accuracy at interval 2^10 across the "
        "DaCapo-analogue streams",
        [](const ExperimentOptions &O) {
          return makeAccuracyFigure(O, "Figure 9", 1024);
        });
  R.add("fig10",
        "Figure 10: sampling accuracy at interval 2^13 (8x fewer samples)",
        [](const ExperimentOptions &O) {
          return makeAccuracyFigure(O, "Figure 10", 8192);
        });
  R.add("sens_lfsr",
        "Section 4.2: LFSR tap/seed sensitivity and AND-bit correlation",
        makeSensLfsr);
}

} // namespace exp
} // namespace bor
