//===- exp/Report.h - CI-aware perf-regression comparison -----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis behind the bor-report tool: compare two loaded runs
/// (run dirs or committed baselines), metric by metric and counter by
/// counter, and render a Markdown report. Three rules make the verdict
/// trustworthy:
///
///   * wall-clock metrics (*_ms, sampled_wallclock_pct) are never gated —
///     they are the only nondeterministic numbers the harness emits;
///   * a metric with a 95% CI sibling (ipc next to ipc_ci95) is only
///     significant when the intervals do not overlap, so sampling noise
///     cannot trip the gate;
///   * direction matters: higher cycles is a regression, higher IPC is an
///     improvement, and a metric with no known direction counts as a
///     regression when it moves (a silent behavior change is worth a red
///     build).
///
/// See docs/REPORTING.md for the workflow.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_REPORT_H
#define BOR_EXP_REPORT_H

#include "exp/Manifest.h"

#include <string>
#include <utility>
#include <vector>

namespace bor {
namespace exp {

struct ReportOptions {
  /// Relative-change gate: |delta| must exceed this many percent (of the
  /// baseline value) to count at all.
  double ThresholdPct = 2.0;

  /// Per-metric overrides of ThresholdPct (--threshold name=pct).
  std::vector<std::pair<std::string, double>> MetricThresholds;

  size_t MaxRows = 50;         ///< metric-change table cap
  size_t MaxCounterRows = 25;  ///< counter-diff table cap
  size_t MaxSparklines = 8;    ///< per-interval series cap
};

struct ReportResult {
  std::string Markdown;
  unsigned Regressions = 0;  ///< gated metric changes for the worse
  unsigned Improvements = 0; ///< significant changes for the better
  unsigned Structural = 0;   ///< missing experiments/records/metrics

  bool clean() const { return Regressions == 0 && Structural == 0; }
};

/// Compares \p Base against \p Cand and renders the Markdown report.
ReportResult compareRuns(const LoadedRun &Base, const LoadedRun &Cand,
                         const ReportOptions &Opt = ReportOptions());

/// Eight-level Unicode sparkline of \p Values (min..max normalized;
/// constant series render mid-level). Empty input renders empty.
std::string sparkline(const std::vector<double> &Values);

/// True for metrics bor-report must never gate on: the wall-clock numbers
/// (*_ms and sampled_wallclock_pct) that legitimately vary run to run.
bool isWallClockMetric(const std::string &Name);

} // namespace exp
} // namespace bor

#endif // BOR_EXP_REPORT_H
