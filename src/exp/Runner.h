//===- exp/Runner.h - Parallel, deterministic experiment execution -------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an ExperimentSpec's grid: Setup once, then every cell on a
/// fixed-size ThreadPool (one worker when Threads == 1), then the serial
/// Summarize stage. Results are collected into spec order regardless of
/// completion order, so the records a sink sees (and therefore the JSON
/// written) are byte-identical for any thread count: parallelism is pure
/// mechanism, never policy. Optional RunnerHooks add observability — a
/// trace span per stage and cell, and a periodic progress heartbeat on
/// stderr — without touching the measurement path.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_RUNNER_H
#define BOR_EXP_RUNNER_H

#include "exp/CellExecutor.h"
#include "exp/Experiment.h"
#include "exp/ResultSink.h"

namespace bor {
namespace exp {

/// How (and whether) progress reaches stderr while a grid runs.
enum class ProgressMode {
  Off,
  Text, ///< human line: "[bor-bench] fig13: 34/80 cells, ..."
  Jsonl ///< one JSON object per tick (machine-readable heartbeat)
};

/// Observability knobs for one runExperiment call.
struct RunnerHooks {
  /// Emits spans for Setup, every cell, and Summarize when non-null (with
  /// a non-null Trace), and tags per-interval time series per cell (with
  /// a non-null Series).
  const telemetry::TelemetrySink *Telemetry = nullptr;

  /// Progress reporting (cells done/total, elapsed, ETA) to stderr
  /// roughly every two seconds. The driver picks Text only when stderr is
  /// a TTY so piped output stays clean; Jsonl is the machine-readable
  /// heartbeat (--progress jsonl / BOR_HEARTBEAT=json).
  ProgressMode Progress = ProgressMode::Off;
};

/// Everything one grid run produced. Partial turns true when any cell
/// did not complete (timed out locally, or lost after the service's
/// retry budget); those cells' records are explicit markers (the cell's
/// params plus cell_status/attempts metrics) and the summary stage is
/// skipped, since summaries over an incomplete grid would silently lie.
struct GridResult {
  std::vector<RunRecord> Records; ///< per-cell, spec order
  std::vector<CellOutcome> Outcomes;
  bool Partial = false;
  size_t CellsTimedOut = 0;
  size_t CellsLost = 0;
};

/// Runs \p Spec's cells on \p Executor and feeds every record to each of
/// \p Sinks in deterministic spec order — the backend-agnostic core the
/// local and distributed drivers share.
GridResult runExperimentWith(const ExperimentSpec &Spec,
                             CellExecutor &Executor,
                             const std::vector<ResultSink *> &Sinks,
                             const RunnerHooks &Hooks = RunnerHooks());

/// Runs \p Spec with \p Threads in-process workers and feeds every record
/// to each of \p Sinks in deterministic spec order. Returns the per-cell
/// records (without the summary records). Convenience wrapper over
/// runExperimentWith + LocalExecutor.
std::vector<RunRecord> runExperiment(const ExperimentSpec &Spec,
                                     unsigned Threads,
                                     const std::vector<ResultSink *> &Sinks,
                                     const RunnerHooks &Hooks = RunnerHooks());

} // namespace exp
} // namespace bor

#endif // BOR_EXP_RUNNER_H
