//===- exp/Runner.h - Parallel, deterministic experiment execution -------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an ExperimentSpec's grid: Setup once, then every cell --
/// concurrently on a fixed-size ThreadPool when Threads > 1, inline when
/// Threads == 1 -- then the serial Summarize stage. Results are collected
/// into spec order regardless of completion order, so the records a sink
/// sees (and therefore the JSON written) are byte-identical for any thread
/// count: parallelism is pure mechanism, never policy.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_RUNNER_H
#define BOR_EXP_RUNNER_H

#include "exp/Experiment.h"
#include "exp/ResultSink.h"

namespace bor {
namespace exp {

/// Runs \p Spec with \p Threads workers and feeds every record to each of
/// \p Sinks in deterministic spec order. Returns the per-cell records
/// (without the summary records).
std::vector<RunRecord> runExperiment(const ExperimentSpec &Spec,
                                     unsigned Threads,
                                     const std::vector<ResultSink *> &Sinks);

} // namespace exp
} // namespace bor

#endif // BOR_EXP_RUNNER_H
