//===- exp/CellExecutor.h - Pluggable grid-cell execution backends -------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between "what an experiment's cells compute" and "where they
/// run". runExperimentWith (exp/Runner.h) owns the deterministic frame —
/// setup, spec-order result collection, summaries, sinks — and delegates
/// only the cell execution to a CellExecutor:
///
///  * LocalExecutor: the classic in-process ThreadPool (one worker when
///    --threads 1), optionally enforcing a per-cell wall-clock timeout;
///  * svc::ServeExecutor (svc/Coordinator.h): leases cells to remote
///    worker processes over TCP and survives their loss.
///
/// Both fill the same spec-order Results vector, so the emitted table and
/// JSON are byte-identical whichever backend ran — distribution, like
/// parallelism, is pure mechanism.
///
/// An executor reports a per-cell CellOutcome. Anything other than Done
/// makes the run partial: the runner substitutes an explicit marker
/// record (cell_status = "timeout" or "lost") for the missing cell,
/// skips the summary stage, and the driver exits with the partial-result
/// status (3) instead of pretending the grid completed.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_EXP_CELLEXECUTOR_H
#define BOR_EXP_CELLEXECUTOR_H

#include "exp/Experiment.h"

#include <functional>
#include <vector>

namespace bor {
namespace exp {

/// How one cell's execution ended.
struct CellOutcome {
  enum class State {
    Done,     ///< Results[i] holds the record
    TimedOut, ///< exceeded the per-cell wall-clock budget
    Lost      ///< retry budget exhausted or no worker could run it
  };
  State S = State::Done;
  unsigned Attempts = 1; ///< executions tried (retries included)
};

class CellExecutor {
public:
  virtual ~CellExecutor() = default;

  /// Runs cell \p Index in-process with the runner's observability
  /// wrapping (trace span, time-series tagging) and returns its record.
  /// Must only be called while execute() is on the stack.
  using CellFn = std::function<RunRecord(size_t Index)>;

  /// Progress tick, called once per finished cell (any thread).
  using DoneFn = std::function<void(size_t Index)>;

  /// Executes every cell of \p Spec, filling \p Results[i] for each cell
  /// whose outcome is Done. Local backends call \p RunCell; distributed
  /// backends ship (experiment, cell index) instead and decode the record
  /// from the wire. Returns one CellOutcome per cell.
  virtual std::vector<CellOutcome>
  execute(const ExperimentSpec &Spec, std::vector<RunRecord> &Results,
          const CellFn &RunCell, const DoneFn &OnCellDone) = 0;
};

/// The in-process backend: a fixed-size ThreadPool, exactly as before the
/// service existed (multi-cell grids always go through the pool so
/// telemetry counters stay thread-count-invariant).
///
/// With \p CellTimeoutS > 0 every cell runs on an abandonable thread: a
/// cell that exceeds the budget is marked TimedOut and the sweep moves
/// on. The abandoned computation cannot be interrupted — it keeps
/// running detached (its result is discarded) until it finishes or the
/// process exits. To keep that safe, timed cells execute a value-captured
/// copy of the spec's run functor without the runner's trace/time-series
/// wrapping, so an abandoned cell never touches telemetry buffers the
/// driver may since have finalized.
class LocalExecutor : public CellExecutor {
public:
  explicit LocalExecutor(unsigned Threads, double CellTimeoutS = 0)
      : Threads(Threads), CellTimeoutS(CellTimeoutS) {}

  std::vector<CellOutcome> execute(const ExperimentSpec &Spec,
                                   std::vector<RunRecord> &Results,
                                   const CellFn &RunCell,
                                   const DoneFn &OnCellDone) override;

private:
  unsigned Threads;
  double CellTimeoutS;
};

} // namespace exp
} // namespace bor

#endif // BOR_EXP_CELLEXECUTOR_H
