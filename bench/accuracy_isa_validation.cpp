//===- bench/accuracy_isa_validation.cpp - Trace vs ISA methodology check -===//
//
// The accuracy figures (9/10) are produced at trace level: sampling
// policies consume the stream of instrumentation-site visits directly,
// just as the paper ran its accuracy experiments with functional SIGILL
// emulation instead of timing simulation (Section 4.1). This bench
// validates that shortcut end-to-end: the same workload is run BOTH ways —
// full BOR-RISC simulation of the instrumented microbenchmark, and the
// trace-level policies over the site-visit stream — and the collected
// sample counts must agree *bit-exactly* (the deterministic counter
// schedules are identical, and the trace-level BrrPolicy wraps the very
// BrrUnit the ISA decider uses, seeded identically).
//
//===----------------------------------------------------------------------===//

#include "profile/Accuracy.h"
#include "profile/SamplingPolicy.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "workloads/Microbench.h"

#include <cstdio>

using namespace bor;

namespace {

constexpr size_t NumChars = 200000;
constexpr unsigned NumSites = 5;

/// The site-visit stream of one character: entry edge, class edge, rejoin
/// edge — derived from the text exactly as the generated program visits
/// them.
unsigned classSite(uint8_t C) {
  if (C >= 'A' && C <= 'Z')
    return 1;
  if (C >= 'a' && C <= 'z')
    return 2;
  return 3;
}

std::vector<uint64_t> isaRun(SamplingFramework F, uint64_t Interval,
                             BrrDecider &D) {
  MicrobenchConfig C;
  C.Text.NumChars = NumChars;
  C.Instr.Framework = F;
  C.Instr.Interval = Interval;
  MicrobenchProgram MB = buildMicrobench(C);
  Machine M;
  Interpreter I(MB.Prog, M, D);
  I.run(1ULL << 34);
  std::vector<uint64_t> Counts;
  for (unsigned S = 0; S != NumSites; ++S)
    Counts.push_back(M.memory().readU64(MB.ProfileBase + 8 * S));
  return Counts;
}

std::vector<uint64_t> traceRun(SamplingPolicy &Policy) {
  TextConfig TC;
  TC.NumChars = NumChars;
  std::vector<uint8_t> Text = generateText(TC);
  std::vector<uint64_t> Counts(NumSites, 0);
  for (uint8_t Ch : Text) {
    if (Policy.sample())
      ++Counts[0];
    if (Policy.sample())
      ++Counts[classSite(Ch)];
    if (Policy.sample())
      ++Counts[4];
  }
  return Counts;
}

std::string render(const std::vector<uint64_t> &Counts) {
  std::string S;
  for (uint64_t C : Counts)
    S += (S.empty() ? "" : "/") + std::to_string(C);
  return S;
}

} // namespace

int main() {
  std::printf("methodology validation: trace-level sampling == full ISA "
              "simulation\n(%zu characters, %u sites, 3 visits per "
              "character)\n\n",
              NumChars, NumSites);

  Table T;
  T.addRow({"technique", "interval", "ISA-run samples (per site)",
            "trace-run samples", "verdict"});
  bool AllMatch = true;

  for (uint64_t Interval : {16ull, 256ull}) {
    {
      NeverTakenDecider Never;
      std::vector<uint64_t> Isa =
          isaRun(SamplingFramework::CounterBased, Interval, Never);
      SwCounterPolicy Policy(Interval);
      std::vector<uint64_t> Trace = traceRun(Policy);
      bool Match = Isa == Trace;
      AllMatch &= Match;
      T.addRow({"counter", std::to_string(Interval), render(Isa),
                render(Trace), Match ? "identical" : "MISMATCH"});
    }
    {
      BrrUnitConfig Cfg; // identical default unit + seed on both sides
      BrrUnitDecider D(Cfg);
      std::vector<uint64_t> Isa =
          isaRun(SamplingFramework::BrrBased, Interval, D);
      BrrPolicy Policy(Interval, Cfg);
      std::vector<uint64_t> Trace = traceRun(Policy);
      bool Match = Isa == Trace;
      AllMatch &= Match;
      T.addRow({"brr", std::to_string(Interval), render(Isa),
                render(Trace), Match ? "identical" : "MISMATCH"});
    }
  }
  T.print();

  std::printf("\n%s\n",
              AllMatch
                  ? "all configurations bit-identical: the Figure-9/10 "
                    "trace-level methodology is exact."
                  : "MISMATCH DETECTED: trace-level methodology diverges "
                    "from ISA simulation!");
  return AllMatch ? 0 : 1;
}
