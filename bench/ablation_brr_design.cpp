//===- bench/ablation_brr_design.cpp - Why the decode-stage design wins ---===//
//
// Ablates the design decisions of Section 3.3 on the microbenchmark:
//
//  1. "brr (proposed)": resolved in decode, predicted not-taken, invisible
//     to the predictor/BTB, commits at decode.
//  2. "brr in back end": forced through the ordinary conditional-branch
//     path (predictor + BTB lookup/insert, execute-time resolution). This
//     is what an instruction with the same frequency semantics would cost
//     without the paper's pipeline integration.
//  3. "brr holds ROB": decode-resolved, but retaining a ROB entry and an
//     issue slot like a normal instruction (ablates the early-commit
//     optimization alone).
//
// A second table decomposes the counter-based framework's overhead with an
// oracle branch predictor: the remainder under perfect prediction is pure
// instruction-bandwidth/latency cost, and the difference is what the
// paper's Section 2 items 5-6 (mispredictions, predictor pollution)
// contribute.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace bor;
using namespace bor::bench;

namespace {

uint64_t roiWithConfig(const InstrumentationConfig &Instr,
                       const PipelineConfig &Machine) {
  MicrobenchConfig C;
  C.Text.NumChars = FigureChars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  Pipeline Pipe(MB.Prog, Machine);
  Pipe.run(1ULL << 40);
  const auto &Events = Pipe.markerEvents();
  return Events[1].CommitCycle - Events[0].CommitCycle;
}

} // namespace

int main() {
  std::printf("Ablation - branch-on-random pipeline integration "
              "(No-Duplication, framework-only, %zu chars)\n\n",
              FigureChars);

  PipelineConfig Default;
  PipelineConfig Backend;
  Backend.BrrAsBackendBranch = true;
  PipelineConfig HoldsRob;
  HoldsRob.BrrCommitsAtDecode = false;
  PipelineConfig Trap;
  Trap.BrrTrapCycles = 300; // Section 3.4's SIGILL emulation fallback

  uint64_t Base = roiWithConfig(InstrumentationConfig(), Default);

  Table T;
  T.addRow({"design", "interval 16 %", "interval 1024 %"});
  struct Arm {
    const char *Name;
    const PipelineConfig *Machine;
  };
  const Arm Arms[] = {
      {"brr (proposed: decode-resolved)", &Default},
      {"brr held in ROB until commit", &HoldsRob},
      {"brr as back-end branch", &Backend},
      {"brr trap-emulated (SIGILL, S3.4)", &Trap},
  };
  for (const Arm &A : Arms) {
    auto Over = [&](uint64_t Interval) {
      uint64_t Cycles = roiWithConfig(
          microConfig(SamplingFramework::BrrBased,
                      DuplicationMode::NoDuplication, Interval, false),
          *A.Machine);
      return 100.0 * (static_cast<double>(Cycles) - Base) / Base;
    };
    T.addRow({A.Name, Table::fmt(Over(16), 2), Table::fmt(Over(1024), 2)});
  }
  T.print();

  std::printf("\nCounter placement (Section 2, items 3-4): memory vs a "
              "pinned register vs brr\n\n");
  Table CP;
  CP.addRow({"framework", "interval 16 %", "interval 1024 %"});
  {
    InstrumentationConfig Mem = microConfig(
        SamplingFramework::CounterBased, DuplicationMode::NoDuplication, 16,
        false);
    InstrumentationConfig Reg = Mem;
    Reg.CounterPlacement = CounterHome::Register;
    InstrumentationConfig Brr = microConfig(
        SamplingFramework::BrrBased, DuplicationMode::NoDuplication, 16,
        false);
    auto Row = [&](const char *Name, InstrumentationConfig Cfg) {
      auto Over = [&](uint64_t Interval) {
        Cfg.Interval = Interval;
        uint64_t Cycles = roiWithConfig(Cfg, Default);
        return Table::fmt(
            100.0 * (static_cast<double>(Cycles) - Base) / Base, 2);
      };
      CP.addRow({Name, Over(16), Over(1024)});
    };
    Row("cbs, counter in memory", Mem);
    Row("cbs, counter in a register", Reg);
    Row("brr (no counter at all)", Brr);
  }
  CP.print();
  std::printf("\nthe register counter removes the memory chain but still "
              "pays a check branch and a decrement at every site - and "
              "permanently costs the program a register, which this "
              "32-register ISA hides but the paper's x86 would not.\n");

  std::printf("\nFramework overhead under oracle branch prediction "
              "(added cycles per character):\n\n");
  PipelineConfig Oracle;
  Oracle.PerfectBranchPrediction = true;
  uint64_t OracleBase = roiWithConfig(InstrumentationConfig(), Oracle);

  Table D;
  D.addRow({"framework / interval", "real machine", "oracle prediction"});
  for (SamplingFramework F :
       {SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
    for (uint64_t Interval : {16ull, 1024ull}) {
      InstrumentationConfig Cfg = microConfig(
          F, DuplicationMode::NoDuplication, Interval, false);
      double Real = (static_cast<double>(roiWithConfig(Cfg, Default)) -
                     static_cast<double>(Base)) /
                    FigureChars;
      double Orac = (static_cast<double>(roiWithConfig(Cfg, Oracle)) -
                     static_cast<double>(OracleBase)) /
                    FigureChars;
      D.addRow({std::string(frameworkName(F)) + " @ " +
                    std::to_string(Interval),
                Table::fmt(Real, 2), Table::fmt(Orac, 2)});
    }
  }
  D.print();
  std::printf(
      "\nreading: with oracle prediction the baseline loses its mispredict\n"
      "stalls, so the counter chain's serialization is *more* exposed -\n"
      "cbs overhead is dominated by its memory-resident counter, not only\n"
      "by branch effects; brr's residual cost is pure fetch bandwidth and\n"
      "vanishes under the oracle at low rates (no front-end flushes).\n");
  return 0;
}
