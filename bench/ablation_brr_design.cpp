//===- bench/ablation_brr_design.cpp - Design-ablation wrapper -----------===//
//
// Thin wrapper running the registered "ablation" experiment (Section 3.3
// pipeline-integration arms, counter placement, and the oracle-prediction
// decomposition). All grid/reporting logic lives in
// src/exp/ExperimentsTiming.cpp; `bor-bench --experiment ablation` is the
// same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("ablation", Argc, Argv);
}
