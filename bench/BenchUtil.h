//===- bench/BenchUtil.h - Shared helpers for the figure harnesses -------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: accuracy-experiment
/// drivers (Figures 9/10 and the sensitivity study) and timing-experiment
/// drivers over the Section 5.3 microbenchmark (Figures 13/14 and the cost
/// decomposition).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_BENCH_BENCHUTIL_H
#define BOR_BENCH_BENCHUTIL_H

#include "profile/Accuracy.h"
#include "profile/SamplingPolicy.h"
#include "profile/TraceGen.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h"

#include <cstdio>
#include <memory>

namespace bor {
namespace bench {

/// Accuracy of the three Figure-9/10 sampling techniques on one benchmark
/// stream. The LFSR technique is run with several seeds in the same pass
/// so the tables can report its seed-to-seed spread (the counters are
/// deterministic and need no such treatment).
struct AccuracyRow {
  double SwCount = 0;
  double HwCount = 0;
  double Random = 0;       ///< mean over seeds
  double RandomSpread = 0; ///< max - min over seeds
};

inline AccuracyRow runAccuracy(const BenchmarkModel &Model,
                               uint64_t Interval, uint64_t BrrSeed) {
  constexpr unsigned NumSeeds = 3;
  MethodProfile Full(Model.NumMethods);
  MethodProfile Sw(Model.NumMethods);
  MethodProfile Hw(Model.NumMethods);
  std::vector<MethodProfile> Rand(NumSeeds,
                                  MethodProfile(Model.NumMethods));

  SwCounterPolicy SwP(Interval);
  HwCounterPolicy HwP(Interval);
  std::vector<BrrPolicy> RandP;
  SplitMix64 Seeder(BrrSeed);
  for (unsigned I = 0; I != NumSeeds; ++I) {
    BrrUnitConfig BrrCfg;
    do {
      BrrCfg.Seed = Seeder.next();
    } while ((BrrCfg.Seed & ((1ULL << BrrCfg.LfsrWidth) - 1)) == 0);
    RandP.emplace_back(Interval, BrrCfg);
  }

  InvocationStream Stream(Model);
  while (!Stream.done()) {
    uint32_t Id = Stream.next();
    Full.record(Id);
    if (SwP.sample())
      Sw.record(Id);
    if (HwP.sample())
      Hw.record(Id);
    for (unsigned I = 0; I != NumSeeds; ++I)
      if (RandP[I].sample())
        Rand[I].record(Id);
  }

  AccuracyRow Row;
  Row.SwCount = overlapAccuracy(Full, Sw);
  Row.HwCount = overlapAccuracy(Full, Hw);
  RunningStat Stat;
  for (const MethodProfile &P : Rand)
    Stat.add(overlapAccuracy(Full, P));
  Row.Random = Stat.mean();
  Row.RandomSpread = Stat.max() - Stat.min();
  return Row;
}

/// Prints a Figure-9/10 style table for the given sampling interval.
inline void printAccuracyFigure(const char *Title, uint64_t Interval) {
  std::printf("%s\n", Title);
  std::printf("(sampling interval %llu; DaCapo-analogue streams, "
              "invocation counts scaled 1/5 of the paper's)\n\n",
              static_cast<unsigned long long>(Interval));

  Table T;
  T.addRow({"benchmark", "invocations", "sw count", "hw count",
            "random (3 seeds)", "seed spread"});
  AccuracyRow Avg;
  std::vector<BenchmarkModel> Models = dacapoAnalogues();
  for (const BenchmarkModel &M : Models) {
    AccuracyRow Row = runAccuracy(M, Interval, /*BrrSeed=*/0x2c9277b5);
    Avg.SwCount += Row.SwCount;
    Avg.HwCount += Row.HwCount;
    Avg.Random += Row.Random;
    T.addRow({M.Name, Table::fmt(static_cast<uint64_t>(M.Invocations)),
              Table::fmt(Row.SwCount, 2), Table::fmt(Row.HwCount, 2),
              Table::fmt(Row.Random, 2),
              Table::fmt(Row.RandomSpread, 2)});
  }
  double N = static_cast<double>(Models.size());
  T.addRow({"average", "", Table::fmt(Avg.SwCount / N, 2),
            Table::fmt(Avg.HwCount / N, 2), Table::fmt(Avg.Random / N, 2),
            ""});
  T.print();
  std::printf("\n");
}

/// Timed microbenchmark run: region-of-interest cycles plus the stats the
/// figures report.
struct MicroRun {
  uint64_t RoiCycles = 0;
  uint64_t DynamicSiteVisits = 0;
  PipelineStats Stats;
};

inline MicroRun runMicrobench(const InstrumentationConfig &Instr,
                              size_t NumChars) {
  MicrobenchConfig C;
  C.Text.NumChars = NumChars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  Pipeline Pipe(MB.Prog, PipelineConfig());
  MicroRun Run;
  Run.Stats = Pipe.run(1ULL << 40);
  const auto &Events = Pipe.markerEvents();
  if (Events.size() == 2)
    Run.RoiCycles = Events[1].CommitCycle - Events[0].CommitCycle;
  Run.DynamicSiteVisits = MB.DynamicSiteVisits;
  return Run;
}

inline InstrumentationConfig
microConfig(SamplingFramework F, DuplicationMode Dup, uint64_t Interval,
            bool IncludeBody) {
  InstrumentationConfig C;
  C.Framework = F;
  C.Dup = Dup;
  C.Interval = Interval;
  C.IncludeBody = IncludeBody;
  return C;
}

/// The character count used by the timing figures. The paper processes
/// half a million characters; that is also affordable here.
constexpr size_t FigureChars = 500000;

/// The sampling-interval sweep of Figures 13/14.
inline std::vector<uint64_t> figureIntervals() {
  return {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

} // namespace bench
} // namespace bor

#endif // BOR_BENCH_BENCHUTIL_H
