//===- bench/determinism_replay.cpp - Section 3.4 determinism checks -----===//
//
// Demonstrates the deterministic implementation options of Sections 3.4
// and 4.1:
//
//  1. Shift-back recovery: speculative LFSR updates by squashed brrs are
//     undone exactly, so a deterministic machine replays the identical brr
//     outcome sequence after any misprediction pattern.
//
//  2. Software determinism: two full microbenchmark runs with the same
//     seed collect bit-identical sample counts.
//
//  3. The hardware-counter mode is cycle-for-cycle equivalent to the
//     software counter framework's sampling decisions.
//
//===----------------------------------------------------------------------===//

#include "core/BrrUnit.h"
#include "profile/SamplingPolicy.h"
#include "sim/Interpreter.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "workloads/Microbench.h"

#include <cstdio>

using namespace bor;

namespace {

bool replayAfterRandomSquashes() {
  // Reference: outcomes with no speculation at all.
  BrrUnitConfig Cfg;
  BrrUnit Reference(Cfg);
  std::vector<bool> Expected;
  for (int I = 0; I != 4000; ++I)
    Expected.push_back(Reference.evaluate(FreqCode(2)));

  // Device under test: interleave real evaluations with wrong-path bursts
  // that get squashed.
  DeterministicBrrUnit Dut(Cfg, 32);
  Xoshiro256 Rng(0x5eed);
  size_t Pos = 0;
  while (Pos < Expected.size()) {
    // Commit a few architecturally-real evaluations.
    unsigned Commit = 1 + Rng.nextBelow(4);
    for (unsigned I = 0; I != Commit && Pos < Expected.size(); ++I, ++Pos) {
      if (Dut.evaluate(FreqCode(2)) != Expected[Pos])
        return false;
    }
    Dut.retireOldest(Dut.inFlight());
    // Speculate down a wrong path, then squash it.
    unsigned Wrong = Rng.nextBelow(20);
    for (unsigned I = 0; I != Wrong; ++I)
      Dut.evaluate(FreqCode(Rng.nextBelow(16)));
    Dut.squashYoungest(Wrong);
  }
  return true;
}

std::vector<uint64_t> microbenchSamples(uint64_t Seed) {
  MicrobenchConfig C;
  C.Text.NumChars = 100000;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 64;
  MicrobenchProgram MB = buildMicrobench(C);
  BrrUnitConfig Cfg;
  Cfg.Seed = Seed;
  BrrUnitDecider D(Cfg);
  Machine M;
  Interpreter I(MB.Prog, M, D);
  I.run(1ULL << 34);
  std::vector<uint64_t> Counts;
  for (unsigned S = 0; S != MB.NumStaticSites; ++S)
    Counts.push_back(M.memory().readU64(MB.ProfileBase + 8 * S));
  return Counts;
}

bool hwCounterMatchesSwCounter() {
  for (uint64_t Interval : {4ull, 64ull, 1024ull}) {
    SwCounterPolicy Sw(Interval);
    HwCounterPolicy Hw(Interval);
    for (uint64_t I = 0; I != Interval * 16; ++I)
      if (Sw.sample() != Hw.sample())
        return false;
  }
  return true;
}

} // namespace

int main() {
  std::printf("Sections 3.4 / 4.1 - deterministic implementation checks\n\n");

  Table T;
  T.addRow({"check", "result"});

  T.addRow({"LFSR shift-back replay across 4000 squash bursts",
            replayAfterRandomSquashes() ? "identical" : "DIVERGED"});

  std::vector<uint64_t> RunA = microbenchSamples(0xace1);
  std::vector<uint64_t> RunB = microbenchSamples(0xace1);
  std::vector<uint64_t> RunC = microbenchSamples(0xbeef);
  T.addRow({"same-seed microbench sample counts",
            RunA == RunB ? "bit-identical" : "DIVERGED"});
  T.addRow({"different-seed microbench sample counts",
            RunA != RunC ? "differ (as expected)" : "UNEXPECTEDLY EQUAL"});

  T.addRow({"hw-counter brr == sw-counter decisions",
            hwCounterMatchesSwCounter() ? "equivalent" : "DIVERGED"});

  T.print();

  uint64_t TotalA = 0;
  for (uint64_t C : RunA)
    TotalA += C;
  std::printf("\nsample totals: seed 0xace1 -> %llu, expected ~%u\n",
              static_cast<unsigned long long>(TotalA), 3 * 100000 / 64);
  return 0;
}
