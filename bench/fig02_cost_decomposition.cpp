//===- bench/fig02_cost_decomposition.cpp - Figure 2 wrapper -------------===//
//
// Thin wrapper running the registered "fig02" experiment (fixed vs
// variable sampling-cost decomposition). All grid/reporting logic lives in
// src/exp/ExperimentsTiming.cpp; `bor-bench --experiment fig02` is the
// same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("fig02", Argc, Argv);
}
