//===- bench/fig02_cost_decomposition.cpp - Figure 2: fixed vs variable --===//
//
// Quantifies the conceptual Figure 2: total sampling overhead decomposes
// into a fixed framework cost (independent of sampling rate - measured by
// the framework-only runs at the largest interval) and a variable cost
// proportional to the sampling rate (the instrumentation actually
// executed). The counter-based framework's fixed cost dominates at low
// rates - the "lower bound of overhead [that] is purely an artifact of the
// sampling technique" - while branch-on-random drives the fixed cost to
// nearly zero.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace bor;
using namespace bor::bench;

int main() {
  std::printf("Figure 2 - fixed vs variable cost decomposition "
              "(No-Duplication, %zu chars)\n\n", FigureChars);

  uint64_t Base =
      runMicrobench(InstrumentationConfig(), FigureChars).RoiCycles;

  Table T;
  T.addRow({"framework", "interval", "total %", "fixed (framework) %",
            "variable (inst) %"});

  for (SamplingFramework F :
       {SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
    for (uint64_t Interval : {16ull, 128ull, 1024ull}) {
      uint64_t FwOnly =
          runMicrobench(microConfig(F, DuplicationMode::NoDuplication,
                                    Interval, false),
                        FigureChars)
              .RoiCycles;
      uint64_t Total =
          runMicrobench(microConfig(F, DuplicationMode::NoDuplication,
                                    Interval, true),
                        FigureChars)
              .RoiCycles;
      auto Pct = [Base](uint64_t Cycles) {
        return 100.0 * (static_cast<double>(Cycles) - Base) / Base;
      };
      T.addRow({frameworkName(F), std::to_string(Interval),
                Table::fmt(Pct(Total), 2), Table::fmt(Pct(FwOnly), 2),
                Table::fmt(Pct(Total) - Pct(FwOnly), 2)});
    }
  }
  T.print();
  std::printf("\nthe variable component scales ~1/interval for both "
              "frameworks; the fixed component is the framework artifact "
              "brr eliminates.\n");
  return 0;
}
