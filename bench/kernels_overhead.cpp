//===- bench/kernels_overhead.cpp - Exhaustive instrumentation, broadly ---===//
//
// Supports the paper's Section-1 claim that with branch-on-random "the
// sampling framework overhead is sufficiently small that programmers can
// exhaustively instrument their code with negligible impact on
// performance" — across code shapes, not just the Section 5.3 loop. Every
// kernel of the suite (branch-bound crc32, store-bound sort, early-exit
// strsearch, ILP-bound matmul, latency-bound listsum) is instrumented at
// its natural edges and timed under both frameworks at period 1024.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "uarch/Pipeline.h"
#include "workloads/Kernels.h"

#include <cstdio>

using namespace bor;

namespace {

struct KernelRun {
  uint64_t RoiCycles = 0;
  uint64_t SitesPerKcycle = 0;
};

uint64_t roiCycles(KernelKind Kind, SamplingFramework F) {
  KernelConfig C;
  C.Kind = Kind;
  C.Instr.Framework = F;
  C.Instr.Interval = 1024;
  KernelProgram K = buildKernel(C);
  Pipeline Pipe(K.Prog, PipelineConfig());
  return Pipe.run(1ULL << 40).roiCycles();
}

} // namespace

int main() {
  std::printf("kernel suite - framework overhead at sampling period 1024\n"
              "(No-Duplication; percent over each kernel's uninstrumented "
              "baseline)\n\n");

  Table T;
  T.addRow({"kernel", "baseline cycles", "site visits", "cbs %", "brr %"});
  double CbsSum = 0, BrrSum = 0;
  const KernelKind Kinds[] = {KernelKind::Crc32, KernelKind::Sort,
                              KernelKind::StrSearch, KernelKind::MatMul,
                              KernelKind::ListSum};
  for (KernelKind Kind : Kinds) {
    uint64_t Base = roiCycles(Kind, SamplingFramework::None);
    uint64_t Cbs = roiCycles(Kind, SamplingFramework::CounterBased);
    uint64_t Brr = roiCycles(Kind, SamplingFramework::BrrBased);
    KernelConfig C;
    C.Kind = Kind;
    KernelProgram K = buildKernel(C);
    double CbsOver = 100.0 * (static_cast<double>(Cbs) - Base) / Base;
    double BrrOver = 100.0 * (static_cast<double>(Brr) - Base) / Base;
    CbsSum += CbsOver;
    BrrSum += BrrOver;
    T.addRow({kernelName(Kind), Table::fmt(Base),
              Table::fmt(K.DynamicSiteVisits), Table::fmt(CbsOver, 2),
              Table::fmt(BrrOver, 2)});
  }
  T.addRow({"average", "", "", Table::fmt(CbsSum / 5, 2),
            Table::fmt(BrrSum / 5, 2)});
  T.print();

  std::printf("\nshape: the counter framework's cost tracks site density "
              "and each kernel's\nsensitivity to extra memory traffic; brr "
              "stays near-negligible everywhere,\nwhich is what makes "
              "'instrument everything, always' plausible.\n");
  return 0;
}
