//===- bench/predictor_pollution.cpp - Section 5.2's mispredict split -----===//
//
// Section 5.2 attributes the counter framework's extra branch
// mispredictions to two sources: (1) the sampling branches themselves
// (mispredicted as taken through predictor aliasing, or when the periodic
// pattern no longer fits), and (2) *program* branches whose accuracy
// degrades because the low-entropy sampling branches dilute the global
// history and alias in the tables. Branch-on-random produces neither: it
// never consults or trains the predictor.
//
// Using the per-instruction observer and the transform's recorded
// check-branch PCs, this bench splits every back-end misprediction of the
// microbenchmark into "framework check" vs "program branch" and compares
// against the uninstrumented baseline.
//
//===----------------------------------------------------------------------===//

#include "exp/Harness.h"
#include "support/Table.h"

#include <cstdio>
#include <unordered_set>

using namespace bor;
using namespace bor::exp;

namespace {

struct MispredictSplit {
  uint64_t Program = 0;
  uint64_t Framework = 0;
  uint64_t RoiCycles = 0;
};

MispredictSplit measure(const InstrumentationConfig &Instr,
                        const PipelineConfig &Machine = PipelineConfig()) {
  MicrobenchConfig C;
  C.Text.NumChars = FigureChars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  std::unordered_set<uint64_t> Checks(MB.CheckBranchPcs.begin(),
                                      MB.CheckBranchPcs.end());

  Pipeline Pipe(MB.Prog, Machine);
  MispredictSplit Split;
  Pipe.setObserver([&](const InstTimestamps &TS) {
    if (!TS.Mispredicted)
      return;
    if (Checks.count(TS.Pc))
      ++Split.Framework;
    else
      ++Split.Program;
  });
  Split.RoiCycles = Pipe.run(1ULL << 40).roiCycles();
  return Split;
}

} // namespace

int main() {
  std::printf("Section 5.2 - where the extra branch mispredictions come "
              "from\n(microbenchmark, No-Duplication, framework-only, "
              "%zu chars; mispredictions per 1000 characters)\n\n",
              FigureChars);

  MispredictSplit Base = measure(InstrumentationConfig());
  double PerK = 1000.0 / static_cast<double>(FigureChars);

  Table T;
  T.addRow({"configuration", "program-branch mis/1K", "delta vs baseline",
            "framework-check mis/1K"});
  T.addRow({"baseline", Table::fmt(Base.Program * PerK, 2), "-", "-"});

  for (uint64_t Interval : {4ull, 16ull, 1024ull}) {
    for (SamplingFramework F :
         {SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
      MispredictSplit S = measure(microConfig(
          F, DuplicationMode::NoDuplication, Interval, false));
      char Name[64];
      std::snprintf(Name, sizeof(Name), "%s @ %llu", frameworkName(F),
                    static_cast<unsigned long long>(Interval));
      T.addRow({Name, Table::fmt(S.Program * PerK, 2),
                Table::fmt((static_cast<double>(S.Program) -
                            static_cast<double>(Base.Program)) *
                               PerK,
                           2),
                Table::fmt(S.Framework * PerK, 2)});
    }
  }
  T.print();

  // --- Sensitivity: the dilution effect vs predictor strength. -----------
  std::printf("\nprogram-branch misprediction delta (cbs @ 16 minus "
              "baseline, per 1K chars)\nby predictor configuration - the "
              "weaker the history, the worse the pollution:\n\n");
  Table S;
  S.addRow({"predictor", "baseline mis/1K", "cbs delta/1K",
            "framework mis/1K"});
  struct PredArm {
    const char *Name;
    PredictorKind Kind;
    unsigned HistoryBits;
  };
  const PredArm PredArms[] = {
      {"tournament, 16-bit history", PredictorKind::Tournament, 16},
      {"gshare-only, 16-bit history", PredictorKind::GshareOnly, 16},
      {"gshare-only, 10-bit history", PredictorKind::GshareOnly, 10},
      {"bimodal-only", PredictorKind::BimodalOnly, 16},
  };
  for (const PredArm &A : PredArms) {
    PipelineConfig Machine;
    Machine.Predictor.Kind = A.Kind;
    Machine.Predictor.HistoryBits = A.HistoryBits;
    MispredictSplit B = measure(InstrumentationConfig(), Machine);
    MispredictSplit CbsS = measure(
        microConfig(SamplingFramework::CounterBased,
                    DuplicationMode::NoDuplication, 16, false),
        Machine);
    S.addRow({A.Name, Table::fmt(B.Program * PerK, 2),
              Table::fmt((static_cast<double>(CbsS.Program) -
                          static_cast<double>(B.Program)) *
                             PerK,
                         2),
              Table::fmt(CbsS.Framework * PerK, 2)});
  }
  S.print();

  std::printf("\nreading: cbs adds mispredictions both on its own check "
              "branches (column 4) and on program branches via history "
              "dilution/aliasing (column 3); brr's rows show zero "
              "framework mispredictions and an unchanged program rate - "
              "taken brrs pay only the short decode-stage flush, which is "
              "not a misprediction of the predictor at all.\n");
  return 0;
}
