//===- bench/fig10_accuracy_8k.cpp - Figure 10 wrapper -------------------===//
//
// Thin wrapper running the registered "fig10" experiment (sampling
// accuracy at interval 2^13). All grid/reporting logic lives in
// src/exp/ExperimentsAccuracy.cpp; `bor-bench --experiment fig10` is the
// same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("fig10", Argc, Argv);
}
