//===- bench/fig10_accuracy_8k.cpp - Figure 10: accuracy at 2^13 ---------===//
//
// Regenerates Figure 10: the Figure-9 experiment with 8x fewer samples
// (interval 8192). Paper shape: same trends as Figure 9 but uniformly
// lower; the counter techniques' resonance penalty shows on jython and
// becomes visible on pmd as well.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

int main() {
  bor::bench::printAccuracyFigure(
      "Figure 10 - sampling accuracy at interval 2^13 (percent overlap)",
      8192);
  return 0;
}
