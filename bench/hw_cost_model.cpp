//===- bench/hw_cost_model.cpp - Section 3.3 hardware cost estimates -----===//
//
// Regenerates the paper's hardware cost estimates (Section 3.3 Summary and
// abstract): a single-issue branch-on-random unit needs ~20 bits of state
// and under 100 gates; a 4-wide superscalar with replicated units stays
// under 100 bits and a few hundred gates. Also tabulates the shared-LFSR
// alternative (footnote 3) and the deterministic implementation's recovery
// storage (Section 3.4).
//
//===----------------------------------------------------------------------===//

#include "core/HwCostModel.h"
#include "support/Table.h"

#include <cstdio>

using namespace bor;

int main() {
  std::printf("Section 3.3 - branch-on-random hardware cost estimates\n\n");

  Table T;
  T.addRow({"configuration", "state bits", "macro gates",
            "2-input equiv gates"});

  auto AddRow = [&T](const char *Name, const HwCostInputs &In) {
    HwCostEstimate E = estimateBrrCost(In);
    T.addRow({Name, Table::fmt(static_cast<uint64_t>(E.StateBits)),
              Table::fmt(static_cast<uint64_t>(E.MacroGates)),
              Table::fmt(static_cast<uint64_t>(E.TwoInputEquivGates))});
  };

  HwCostInputs Single; // 20-bit LFSR, 2 taps, 16 freqs, 1-wide
  AddRow("1-wide (paper: ~20 bits, <100 gates)", Single);

  HwCostInputs Single16 = Single;
  Single16.LfsrWidth = 16;
  AddRow("1-wide, minimal 16-bit LFSR", Single16);

  HwCostInputs Wide4 = Single;
  Wide4.DecodeWidth = 4;
  AddRow("4-wide replicated (paper: <100 bits, <400 gates)", Wide4);

  HwCostInputs Wide4Shared = Wide4;
  Wide4Shared.Replicated = false;
  AddRow("4-wide shared LFSR + priority encoder (fn. 3)", Wide4Shared);

  HwCostInputs Det = Single;
  Det.Deterministic = true;
  Det.MaxInFlight = 16;
  AddRow("1-wide deterministic, 16 brrs in flight (S3.4)", Det);

  HwCostInputs Wide8 = Single;
  Wide8.DecodeWidth = 8;
  AddRow("8-wide replicated", Wide8);

  T.print();

  std::printf("\nchecks against the paper's claims:\n");
  HwCostEstimate E1 = estimateBrrCost(Single);
  HwCostEstimate E4 = estimateBrrCost(Wide4);
  std::printf("  1-wide: %u bits (~20) and %u macro gates (<100): %s\n",
              E1.StateBits, E1.MacroGates,
              E1.StateBits == 20 && E1.MacroGates < 100 ? "ok" : "FAIL");
  std::printf("  4-wide: %u bits (<100) and %u macro gates (<400): %s\n",
              E4.StateBits, E4.MacroGates,
              E4.StateBits < 100 && E4.MacroGates < 400 ? "ok" : "FAIL");
  return 0;
}
