//===- bench/micro_baseline_stats.cpp - Section 5.3 baseline profile -----===//
//
// Regenerates the Section 5.3 baseline characterization of the
// microbenchmark: branch prediction accuracy (paper: 84.5%, from the
// data-dependent character-class branches over words that are all upper-
// or all lower-case), cache hit rates (paper: >99.5% for both L1s), and
// front-end utilization.
//
//===----------------------------------------------------------------------===//

#include "exp/Harness.h"
#include "support/Table.h"

#include <cstdio>

using namespace bor;
using namespace bor::exp;

int main() {
  std::printf("Section 5.3 - microbenchmark baseline characterization "
              "(%zu chars)\n\n", FigureChars);

  MicrobenchConfig C;
  C.Text.NumChars = FigureChars;
  MicrobenchProgram MB = buildMicrobench(C);
  Pipeline Pipe(MB.Prog, PipelineConfig());
  PipelineStats S = Pipe.run(1ULL << 40).Stats;

  double PredAcc =
      100.0 * (1.0 - static_cast<double>(Pipe.predictor().stats().Mispredictions) /
                         static_cast<double>(Pipe.predictor().stats().Predictions));

  Table T;
  T.addRow({"metric", "value", "paper"});
  T.addRow({"instructions", Table::fmt(S.Insts), "-"});
  T.addRow({"cycles", Table::fmt(S.Cycles), "-"});
  T.addRow({"IPC", Table::fmt(S.ipc(), 2), "-"});
  T.addRow({"branch prediction accuracy %", Table::fmt(PredAcc, 1),
            "84.5"});
  T.addRow({"L1I hit rate %",
            Table::fmt(100.0 * Pipe.memHier().l1i().stats().hitRate(), 2),
            ">99.5"});
  T.addRow({"L1D hit rate %",
            Table::fmt(100.0 * Pipe.memHier().l1d().stats().hitRate(), 2),
            ">99.5"});
  T.addRow({"full-width fetch cycles %",
            Table::fmt(100.0 * static_cast<double>(S.FullWidthFetchCycles) /
                           static_cast<double>(S.Cycles),
                       1),
            "67 (fetching at max)"});
  T.addRow({"backend-flush fetch-stall cycles %",
            Table::fmt(100.0 * static_cast<double>(S.BackendFlushCycles) /
                           static_cast<double>(S.Cycles),
                       1),
            "29.5 (handling mispredictions)"});
  T.print();
  return 0;
}
