//===- bench/sens_lfsr_config.cpp - Section 4.2 sensitivity wrapper ------===//
//
// Thin wrapper running the registered "sens_lfsr" experiment (LFSR
// tap/seed sensitivity and the AND-bit-selection correlation ablation).
// All grid/reporting logic lives in src/exp/ExperimentsAccuracy.cpp;
// `bor-bench --experiment sens_lfsr` is the same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("sens_lfsr", Argc, Argv);
}
