//===- bench/sens_lfsr_config.cpp - Section 4.2 sensitivity analysis -----===//
//
// Regenerates the Section 4.2 sensitivity study:
//
//  1. Profile accuracy across the paper's four 32-bit LFSR tap selections
//     (two four-tap, two six-tap), compared against the spread induced by
//     seed choice alone. Paper result: the variation between tap sets is
//     below the seed-to-seed noise, so the tap selection can be chosen for
//     implementation convenience.
//
//  2. The AND-bit-selection ablation of Section 3.3: contiguous vs spaced
//     AND inputs. The marginal taken-rate is identical, but adjacent bits
//     make the conditional probability of back-to-back taken 25% branches
//     ~50%; spaced bits restore near-independence. We also show that even
//     the correlated selection does not measurably hurt this profiling
//     workload (the paper's "data not shown" remark).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lfsr/TapCatalog.h"
#include "support/Stats.h"

using namespace bor;
using namespace bor::bench;

namespace {

/// Accuracy of brr sampling on the jython analogue with a caller-supplied
/// unit configuration.
double brrAccuracy(const BenchmarkModel &Model, uint64_t Interval,
                   const BrrUnitConfig &Cfg) {
  MethodProfile Full(Model.NumMethods);
  MethodProfile Sampled(Model.NumMethods);
  BrrPolicy Policy(Interval, Cfg);
  InvocationStream Stream(Model);
  while (!Stream.done()) {
    uint32_t Id = Stream.next();
    Full.record(Id);
    if (Policy.sample())
      Sampled.record(Id);
  }
  return overlapAccuracy(Full, Sampled);
}

} // namespace

int main() {
  const uint64_t Interval = 1024;
  BenchmarkModel Jython = dacapoAnalogues()[5];
  // A shorter stream keeps the seed sweep affordable.
  Jython.Invocations /= 4;

  std::printf("Section 4.2 - LFSR configuration sensitivity "
              "(jython analogue, interval %llu)\n\n",
              static_cast<unsigned long long>(Interval));

  // --- Tap-set sweep (fixed seed) vs seed sweep (fixed taps). ----------
  Table Taps;
  Taps.addRow({"tap selection", "polynomial taps", "accuracy %"});
  RunningStat TapSpread;
  for (const TapSet &T : paperSensitivityTapSets()) {
    BrrUnitConfig Cfg;
    Cfg.LfsrWidth = 32;
    Cfg.TapMask = T.makeLfsr().tapMask();
    Cfg.Seed = 0xace1;
    double Acc = brrAccuracy(Jython, Interval, Cfg);
    TapSpread.add(Acc);
    std::string Poly;
    for (unsigned P : T.PolyTaps)
      Poly += (Poly.empty() ? "" : ",") + std::to_string(P);
    Taps.addRow({T.Name, Poly, Table::fmt(Acc, 3)});
  }
  Taps.print();
  std::printf("tap-set spread (max-min): %.3f points\n\n",
              TapSpread.max() - TapSpread.min());

  Table Seeds;
  Seeds.addRow({"seed", "accuracy %"});
  RunningStat SeedSpread;
  for (uint64_t Seed : {0xace1ull, 0xbeefull, 0x1234ull, 0x777ull,
                        0xfedcull, 0x2c92ull}) {
    BrrUnitConfig Cfg;
    Cfg.LfsrWidth = 32;
    Cfg.TapMask = paperSensitivityTapSets()[0].makeLfsr().tapMask();
    Cfg.Seed = Seed;
    double Acc = brrAccuracy(Jython, Interval, Cfg);
    SeedSpread.add(Acc);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(Seed));
    Seeds.addRow({Buf, Table::fmt(Acc, 3)});
  }
  Seeds.print();
  std::printf("seed spread (max-min): %.3f points\n", SeedSpread.max() -
                                                           SeedSpread.min());
  std::printf("paper claim: tap-set variation is within seed-to-seed "
              "noise -> %s\n\n",
              TapSpread.max() - TapSpread.min() <=
                      SeedSpread.max() - SeedSpread.min() + 0.5
                  ? "reproduced"
                  : "NOT reproduced");

  // --- AND-bit selection: correlation ablation. --------------------------
  std::printf("Section 3.3 - AND-input selection (freq=25%%)\n\n");
  Table Corr;
  Corr.addRow({"policy", "marginal taken %", "P(taken | prev taken) %",
               "accuracy %"});
  for (BitSelectPolicy Policy :
       {BitSelectPolicy::Contiguous, BitSelectPolicy::Spaced}) {
    BrrUnitConfig Cfg;
    Cfg.Policy = Policy;
    BrrUnit Unit(Cfg);
    FreqCode Quarter(1);
    uint64_t Taken = 0, Pairs = 0, PairTaken = 0;
    bool Prev = Unit.evaluate(Quarter);
    const uint64_t N = 4000000;
    for (uint64_t I = 0; I != N; ++I) {
      bool Cur = Unit.evaluate(Quarter);
      Taken += Cur;
      if (Prev) {
        ++Pairs;
        PairTaken += Cur;
      }
      Prev = Cur;
    }

    BrrUnitConfig AccCfg;
    AccCfg.Policy = Policy;
    double Acc = brrAccuracy(Jython, Interval, AccCfg);

    Corr.addRow({bitSelectPolicyName(Policy),
                 Table::fmt(100.0 * Taken / N, 2),
                 Table::fmt(100.0 * PairTaken / Pairs, 2),
                 Table::fmt(Acc, 3)});
  }
  Corr.print();
  std::printf("paper: adjacent bits give ~50%% conditional take; spacing "
              "restores independence; profiling accuracy is robust to "
              "either.\n");
  return 0;
}
