//===- bench/core_microbench.cpp - Library hot-path microbenchmarks ------===//
//
// google-benchmark timings for the library's hot paths: the simulated
// hardware primitives (LFSR step, brr evaluation, sampling policies) and
// the simulators themselves (functional interpreter and timing pipeline,
// in instructions per second).
//
//===----------------------------------------------------------------------===//

#include "core/BrrUnit.h"
#include "profile/SamplingPolicy.h"
#include "profile/TraceGen.h"
#include "sim/Interpreter.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h"

#include <benchmark/benchmark.h>

using namespace bor;

static void BM_LfsrStep(benchmark::State &State) {
  Lfsr L = Lfsr::fromPolynomial(20, {20, 17});
  for (auto _ : State)
    benchmark::DoNotOptimize(L.step());
}
BENCHMARK(BM_LfsrStep);

static void BM_BrrEvaluate(benchmark::State &State) {
  BrrUnit Unit;
  FreqCode F(9);
  for (auto _ : State)
    benchmark::DoNotOptimize(Unit.evaluate(F));
}
BENCHMARK(BM_BrrEvaluate);

static void BM_DeterministicBrrEvaluate(benchmark::State &State) {
  DeterministicBrrUnit Unit(BrrUnitConfig(), 64);
  FreqCode F(9);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Unit.evaluate(F));
    Unit.retireOldest(1);
  }
}
BENCHMARK(BM_DeterministicBrrEvaluate);

static void BM_SwCounterPolicy(benchmark::State &State) {
  SwCounterPolicy P(1024);
  for (auto _ : State)
    benchmark::DoNotOptimize(P.sample());
}
BENCHMARK(BM_SwCounterPolicy);

static void BM_InvocationStream(benchmark::State &State) {
  BenchmarkModel Model;
  Model.Invocations = ~0ULL >> 1;
  Model.NumMethods = 400;
  InvocationStream Stream(Model);
  for (auto _ : State)
    benchmark::DoNotOptimize(Stream.next());
}
BENCHMARK(BM_InvocationStream);

static void BM_FunctionalInterpreter(benchmark::State &State) {
  MicrobenchConfig C;
  C.Text.NumChars = 50000;
  MicrobenchProgram MB = buildMicrobench(C);
  for (auto _ : State) {
    BrrUnitDecider D;
    Machine M;
    Interpreter I(MB.Prog, M, D);
    RunStats S = I.run(1ULL << 34);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(S.Insts));
  }
}
BENCHMARK(BM_FunctionalInterpreter)->Unit(benchmark::kMillisecond);

static void BM_TimingPipeline(benchmark::State &State) {
  MicrobenchConfig C;
  C.Text.NumChars = 50000;
  MicrobenchProgram MB = buildMicrobench(C);
  for (auto _ : State) {
    Pipeline Pipe(MB.Prog, PipelineConfig());
    PipelineStats S = Pipe.run(1ULL << 40).Stats;
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(S.Insts));
  }
}
BENCHMARK(BM_TimingPipeline)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
