//===- bench/fig14_cycles_per_site.cpp - Figure 14: cost per site --------===//
//
// Regenerates Figure 14: average added cycles per dynamically-encountered
// sampling site (net cycles over baseline divided by dynamic site visits),
// for the Full-Duplication frameworks with and without instrumentation,
// across the interval sweep. Also prints the paper's reference point: the
// per-site cost of full (unsampled) instrumentation.
//
// Paper shape: brr's framework cost falls fast with the interval (50%
// costs ~3.19 cycles/site, dominated by half a front-end flush plus the
// two extra instructions); the counter framework's floor is far higher
// because every site visit pays the counter work regardless of interval.
// Above interval 64, brr is 10-20x cheaper per site.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace bor;
using namespace bor::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::printf("Figure 14 - average added cycles per sampling site "
              "(Full-Duplication)\n\n");

  MicroRun Baseline = runMicrobench(InstrumentationConfig(), FigureChars);
  uint64_t Visits = Baseline.DynamicSiteVisits;

  struct Arm {
    const char *Name;
    SamplingFramework F;
    bool Body;
  };
  const Arm Arms[] = {
      {"cbs+inst", SamplingFramework::CounterBased, true},
      {"cbs", SamplingFramework::CounterBased, false},
      {"brr+inst", SamplingFramework::BrrBased, true},
      {"brr", SamplingFramework::BrrBased, false},
  };

  Table T;
  {
    std::vector<std::string> Header = {"series"};
    for (uint64_t Interval : figureIntervals())
      Header.push_back(std::to_string(Interval));
    T.addRow(Header);
  }

  std::string CsvOut = "series,interval,cycles_per_site\n";
  for (const Arm &A : Arms) {
    std::vector<std::string> Row = {A.Name};
    for (uint64_t Interval : figureIntervals()) {
      MicroRun Run = runMicrobench(
          microConfig(A.F, DuplicationMode::FullDuplication, Interval,
                      A.Body),
          FigureChars);
      double PerSite = (static_cast<double>(Run.RoiCycles) -
                        static_cast<double>(Baseline.RoiCycles)) /
                       static_cast<double>(Visits);
      Row.push_back(Table::fmt(PerSite, 2));
      CsvOut += std::string(A.Name) + "," + std::to_string(Interval) +
                "," + Table::fmt(PerSite, 4) + "\n";
    }
    T.addRow(Row);
  }
  if (Csv)
    std::printf("%s", CsvOut.c_str());
  else
    T.print();

  // Reference: full instrumentation without any sampling (paper: 4.3
  // cycles added per site).
  MicroRun Full = runMicrobench(
      microConfig(SamplingFramework::Full, DuplicationMode::NoDuplication,
                  1024, true),
      FigureChars);
  double FullPerSite = (static_cast<double>(Full.RoiCycles) -
                        static_cast<double>(Baseline.RoiCycles)) /
                       static_cast<double>(Visits);
  std::printf("\nreference: full-instrumentation adds %.2f cycles/site "
              "(paper: 4.3)\n",
              FullPerSite);
  return 0;
}
