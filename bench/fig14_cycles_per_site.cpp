//===- bench/fig14_cycles_per_site.cpp - Figure 14 wrapper ---------------===//
//
// Thin wrapper running the registered "fig14" experiment (average added
// cycles per sampling site, plus the full-instrumentation reference). All
// grid/reporting logic lives in src/exp/ExperimentsTiming.cpp; `bor-bench
// --experiment fig14` is the same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("fig14", Argc, Argv);
}
