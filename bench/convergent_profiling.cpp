//===- bench/convergent_profiling.cpp - Section 7's convergent profiling --===//
//
// Quantifies the paper's convergent-profiling extension: because every brr
// encodes its own frequency, a runtime can sample fast while a profile is
// still moving and back off once it has converged, re-raising the rate
// when low-frequency samples disagree with the established
// characterization.
//
// We compare three policies on a workload with a mid-run phase change:
//
//   fixed 1/8     - accurate and quick to adapt, but expensive (many
//                   samples);
//   fixed 1/1024  - cheap, but slow to notice the phase change;
//   convergent    - starts at 1/8, converges down toward 1/1024, and
//                   re-characterizes after the shift.
//
// Reported per policy: samples taken (the cost proxy: every sample is an
// instrumentation execution), post-convergence accuracy in each phase, and
// how many visits after the shift it took to re-rank the new hot method.
//
//===----------------------------------------------------------------------===//

#include "profile/Accuracy.h"
#include "profile/Convergent.h"
#include "profile/SamplingPolicy.h"
#include "profile/TraceGen.h"
#include "support/Table.h"

#include <cstdio>

using namespace bor;

namespace {

constexpr uint32_t NumMethods = 64;
constexpr uint64_t PhaseLen = 4000000;

/// Phase 1 invokes the Zipf head directly; phase 2 rotates ids by 17 so a
/// previously-cold method becomes the hottest.
uint32_t methodAt(InvocationStream &S, bool Shifted) {
  uint32_t Id = S.next();
  return Shifted ? (Id + 17) % NumMethods : Id;
}

BenchmarkModel streamModel(uint64_t Seed) {
  BenchmarkModel M;
  M.Invocations = PhaseLen;
  M.NumMethods = NumMethods;
  M.ZipfSkew = 1.2;
  M.ResonantFraction = 0;
  M.Seed = Seed;
  return M;
}

struct PolicyResult {
  uint64_t Samples = 0;
  double Phase2Accuracy = 0;
  /// Visits after the shift until the policy's running profile (over a
  /// trailing window) ranks the new hot method first; 0 = never.
  uint64_t DetectVisits = 0;
};

/// Drives one sampling functor through both phases.
template <typename SampleFn, typename RateFn>
PolicyResult drive(SampleFn &&Sample, RateFn &&CurrentlySampled) {
  PolicyResult R;
  MethodProfile Phase2Full(NumMethods);
  MethodProfile Phase2Sampled(NumMethods);
  // Trailing window used for shift detection.
  MethodProfile Window(NumMethods);
  uint64_t WindowStart = 0;

  InvocationStream S1(streamModel(0xaaa));
  while (!S1.done())
    Sample(methodAt(S1, false));
  (void)CurrentlySampled;

  InvocationStream S2(streamModel(0xbbb));
  uint64_t Visits = 0;
  uint32_t NewHot = (0 + 17) % NumMethods; // phase-2 image of rank 0
  while (!S2.done()) {
    uint32_t Id = methodAt(S2, true);
    ++Visits;
    Phase2Full.record(Id);
    if (Sample(Id)) {
      Phase2Sampled.record(Id);
      Window.record(Id);
    }
    // Rotate the detection window every 256 samples.
    if (Window.total() >= 256) {
      bool Detected = true;
      for (uint32_t M = 0; M != NumMethods; ++M)
        if (M != NewHot && Window.count(M) > Window.count(NewHot))
          Detected = false;
      if (Detected && R.DetectVisits == 0)
        R.DetectVisits = Visits;
      Window = MethodProfile(NumMethods);
      WindowStart = Visits;
    }
  }
  (void)WindowStart;
  R.Phase2Accuracy = overlapAccuracy(Phase2Full, Phase2Sampled);
  return R;
}

} // namespace

int main() {
  std::printf("Section 7 - convergent profiling on a phase-changing "
              "workload\n(%llu visits per phase, %u methods)\n\n",
              static_cast<unsigned long long>(PhaseLen), NumMethods);

  Table T;
  T.addRow({"policy", "samples taken", "phase-2 accuracy %",
            "shift detected after (visits)"});

  auto Report = [&](const char *Name, PolicyResult R, uint64_t Samples) {
    T.addRow({Name, Table::fmt(Samples), Table::fmt(R.Phase2Accuracy, 2),
              R.DetectVisits ? Table::fmt(R.DetectVisits)
                             : std::string("never")});
  };

  {
    BrrPolicy Fast(8);
    uint64_t Count = 0;
    PolicyResult R = drive(
        [&](uint32_t) {
          bool S = Fast.sample();
          Count += S;
          return S;
        },
        [] { return true; });
    Report("fixed 1/8", R, Count);
  }
  {
    BrrPolicy Slow(1024);
    uint64_t Count = 0;
    PolicyResult R = drive(
        [&](uint32_t) {
          bool S = Slow.sample();
          Count += S;
          return S;
        },
        [] { return true; });
    Report("fixed 1/1024", R, Count);
  }
  {
    ConvergentConfig Cfg;
    Cfg.InitialFreqRaw = 2; // 1/8
    Cfg.MaxFreqRaw = 9;     // 1/1024
    Cfg.EpochSamples = 512;
    Cfg.AdaptiveThresholds = true; // noise-floor-calibrated
    ConvergentProfiler CP(NumMethods, Cfg);
    PolicyResult R = drive(
        [&](uint32_t Id) { return CP.visit(Id); }, [] { return true; });
    Report("convergent (1/8 .. 1/1024)", R, CP.samples());
    std::printf("convergent rate at end of run: 1/%llu\n\n",
                static_cast<unsigned long long>(
                    CP.currentFreq().expectedInterval()));
  }

  T.print();
  std::printf(
      "\nshape: the fast policy buys quick detection with ~128x the "
      "samples; convergent\nprofiling matches the *slow* policy's cost "
      "(it had converged to 1/1024 before the\nshift), and once its "
      "low-frequency samples disagree with the characterization it\n"
      "quadruples its rate per epoch to re-characterize - the Section 7 "
      "loop. Detection\nlatency at the backed-off rate is bounded by the "
      "sampling interval itself, which\nis the accuracy/overhead knob the "
      "4-bit freq field exposes.\n");
  return 0;
}
