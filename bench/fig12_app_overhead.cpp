//===- bench/fig12_app_overhead.cpp - Figure 12: application overhead ----===//
//
// Regenerates Figure 12: execution-time overhead of the two sampling
// frameworks (both using Arnold-Ryder Full-Duplication, sampling period
// 1024) on the five application analogues, in timing simulation, normalized
// to an uninstrumented build of the same program.
//
// Paper shape: counter-based sampling averages ~5% overhead; the
// branch-on-random framework averages ~0.64% - almost an order of
// magnitude less.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/AppGen.h"

using namespace bor;
using namespace bor::bench;

namespace {

uint64_t appRoiCycles(AppConfig C, SamplingFramework F) {
  C.Instr.Framework = F;
  C.Instr.Dup = DuplicationMode::FullDuplication;
  C.Instr.Interval = 1024;
  AppProgram P = buildApp(C);
  Pipeline Pipe(P.Prog, PipelineConfig());
  Pipe.run(1ULL << 40);
  const auto &Events = Pipe.markerEvents();
  return Events[1].CommitCycle - Events[0].CommitCycle;
}

} // namespace

int main() {
  std::printf("Figure 12 - sampling framework overhead on application "
              "analogues\n");
  std::printf("(Full-Duplication, sampling period 1024, timing "
              "simulation; percent over uninstrumented baseline)\n\n");

  Table T;
  T.addRow({"benchmark", "baseline cycles", "counter-based %", "brr %"});
  double CbsSum = 0, BrrSum = 0;
  std::vector<AppConfig> Apps = dacapoAppAnalogues();
  for (const AppConfig &App : Apps) {
    uint64_t Base = appRoiCycles(App, SamplingFramework::None);
    uint64_t Cbs = appRoiCycles(App, SamplingFramework::CounterBased);
    uint64_t Brr = appRoiCycles(App, SamplingFramework::BrrBased);
    double CbsOver = 100.0 * (static_cast<double>(Cbs) - Base) / Base;
    double BrrOver = 100.0 * (static_cast<double>(Brr) - Base) / Base;
    CbsSum += CbsOver;
    BrrSum += BrrOver;
    T.addRow({App.Name, Table::fmt(Base), Table::fmt(CbsOver, 2),
              Table::fmt(BrrOver, 2)});
  }
  double N = static_cast<double>(Apps.size());
  T.addRow({"average", "", Table::fmt(CbsSum / N, 2),
            Table::fmt(BrrSum / N, 2)});
  T.print();
  std::printf("\npaper: cbs averages ~4.97%%, brr ~0.64%% on "
              "weakly-optimized Jikes builds; the reproduction preserves "
              "the ordering and the multi-x gap.\n");
  return 0;
}
