//===- bench/fig12_app_overhead.cpp - Figure 12 wrapper ------------------===//
//
// Thin wrapper running the registered "fig12" experiment (framework
// overhead on the application analogues). All grid/reporting logic lives
// in src/exp/ExperimentsTiming.cpp; `bor-bench --experiment fig12` is the
// same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("fig12", Argc, Argv);
}
