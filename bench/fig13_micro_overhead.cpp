//===- bench/fig13_micro_overhead.cpp - Figure 13 wrapper ----------------===//
//
// Thin wrapper running the registered "fig13" experiment (microbenchmark
// overhead vs sampling interval, eight framework arms). All grid/reporting
// logic lives in src/exp/ExperimentsTiming.cpp; `bor-bench --experiment
// fig13` is the same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("fig13", Argc, Argv);
}
