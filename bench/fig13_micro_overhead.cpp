//===- bench/fig13_micro_overhead.cpp - Figure 13: overhead vs interval --===//
//
// Regenerates Figure 13: percent execution-time overhead of the four
// framework combinations ({counter-based, brr} x {No-Duplication,
// Full-Duplication}), each with and without the instrumentation bodies, as
// the sampling interval sweeps 2..1024 on the Section 5.3 microbenchmark.
//
// Paper shape: all curves fall with the interval; both brr curves drop far
// below the counter-based ones for intervals above ~64 (order of
// magnitude); Full-Duplication lowers both frameworks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace bor;
using namespace bor::bench;

int main(int Argc, char **Argv) {
  bool Csv = Argc > 1 && std::string(Argv[1]) == "--csv";
  std::printf("Figure 13 - microbenchmark overhead vs sampling interval\n");
  std::printf("(percent over uninstrumented baseline; %zu characters; "
              "'+inst' includes the instrumentation bodies)\n\n",
              FigureChars);

  uint64_t Base =
      runMicrobench(InstrumentationConfig(), FigureChars).RoiCycles;

  struct Arm {
    const char *Name;
    SamplingFramework F;
    DuplicationMode Dup;
    bool Body;
  };
  const Arm Arms[] = {
      {"cbs+inst (no-dup)", SamplingFramework::CounterBased,
       DuplicationMode::NoDuplication, true},
      {"cbs (no-dup)", SamplingFramework::CounterBased,
       DuplicationMode::NoDuplication, false},
      {"cbs+inst (full-dup)", SamplingFramework::CounterBased,
       DuplicationMode::FullDuplication, true},
      {"cbs (full-dup)", SamplingFramework::CounterBased,
       DuplicationMode::FullDuplication, false},
      {"brr+inst (no-dup)", SamplingFramework::BrrBased,
       DuplicationMode::NoDuplication, true},
      {"brr (no-dup)", SamplingFramework::BrrBased,
       DuplicationMode::NoDuplication, false},
      {"brr+inst (full-dup)", SamplingFramework::BrrBased,
       DuplicationMode::FullDuplication, true},
      {"brr (full-dup)", SamplingFramework::BrrBased,
       DuplicationMode::FullDuplication, false},
  };

  Table T;
  {
    std::vector<std::string> Header = {"series"};
    for (uint64_t Interval : figureIntervals())
      Header.push_back(std::to_string(Interval));
    T.addRow(Header);
  }

  std::string CsvOut = "series,interval,overhead_pct\n";
  for (const Arm &A : Arms) {
    std::vector<std::string> Row = {A.Name};
    for (uint64_t Interval : figureIntervals()) {
      MicroRun Run = runMicrobench(microConfig(A.F, A.Dup, Interval, A.Body),
                                   FigureChars);
      double Over = 100.0 *
                    (static_cast<double>(Run.RoiCycles) - Base) /
                    static_cast<double>(Base);
      Row.push_back(Table::fmt(Over, 1));
      CsvOut += std::string(A.Name) + "," + std::to_string(Interval) +
                "," + Table::fmt(Over, 3) + "\n";
    }
    T.addRow(Row);
  }
  if (Csv)
    std::printf("%s", CsvOut.c_str());
  else
    T.print();
  std::printf("\nbaseline: %llu cycles (%.2f cycles/char)\n",
              static_cast<unsigned long long>(Base),
              static_cast<double>(Base) / FigureChars);
  return 0;
}
