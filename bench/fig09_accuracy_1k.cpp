//===- bench/fig09_accuracy_1k.cpp - Figure 9 wrapper --------------------===//
//
// Thin wrapper running the registered "fig09" experiment (sampling
// accuracy at interval 2^10). All grid/reporting logic lives in
// src/exp/ExperimentsAccuracy.cpp; `bor-bench --experiment fig09` is the
// same thing.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) {
  return bor::exp::experimentMain("fig09", Argc, Argv);
}
