//===- bench/fig09_accuracy_1k.cpp - Figure 9: accuracy at 2^10 ----------===//
//
// Regenerates Figure 9: method-invocation profile accuracy (overlap
// percentage vs the full profile) for software-counter, hardware-counter
// and branch-on-random sampling at interval 1024 across the eight
// DaCapo-analogue streams.
//
// Paper shape: all three techniques land in the 90s; fop/antlr are lower
// (few samples); jython stands out with brr beating both counters by
// several points because its period-2 loops resonate with deterministic
// power-of-two intervals.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

int main() {
  bor::bench::printAccuracyFigure(
      "Figure 9 - sampling accuracy at interval 2^10 (percent overlap)",
      1024);
  return 0;
}
