//===- tools/bor-run.cpp - BOR-RISC simulator driver -----------------------===//
//
// Runs a BORB image on the functional simulator or the cycle-level
// out-of-order timing model:
//
//   bor-run program.borb [options]
//
//   --timing               use the Section 5.1 timing model (default:
//                          functional)
//   --decider=lfsr|counter|never|always
//                          how brr outcomes are resolved (default lfsr)
//   --seed=N               LFSR seed for the lfsr decider
//   --max-insts=N          instruction budget (default 1<<32)
//   --print-insts=N        functional mode: print the first N executed
//                          instructions with their PCs
//   --trace=PATH           write a Chrome trace-event JSON file (load in
//                          chrome://tracing or Perfetto) with the run span
//                          and per-flush / taken-brr instant events
//   --counters             print the telemetry counter snapshot after the
//                          run (see docs/OBSERVABILITY.md)
//   --dump-sym=NAME        after the run, print the u64 at data symbol NAME
//   --checkpoint=PATH      functional mode: snapshot the architectural
//                          state (registers, memory, decider) into a BORB
//                          image at PATH, then keep running
//   --checkpoint-at=N      take the checkpoint after N retired
//                          instructions (default 0 = at the start)
//   --resume               treat the input as a checkpoint image: restore
//                          its state and continue (functional or --timing)
//   --ckpt-dir=DIR         functional mode, lfsr decider: build (or load
//                          from DIR) a COW checkpoint library for the
//                          program — one checkpoint every --ckpt-every
//                          insts — persisting it in DIR as a BORB v2 image
//                          for later bor-run/bor-bench invocations
//   --ckpt-every=N         library capture period (default 100000)
//   --resume-at=N          with --ckpt-dir: resume from the nearest
//                          library checkpoint at or before inst N, execute
//                          the gap, and continue to --max-insts
//
// Exit status: 0 if the program halted, 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "ckpt/LibraryPool.h"
#include "isa/Disasm.h"
#include "isa/Serialize.h"
#include "sample/Checkpoint.h"
#include "sim/Interpreter.h"
#include "telemetry/Counters.h"
#include "telemetry/Telemetry.h"
#include "uarch/Pipeline.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace bor;

namespace {

struct Options {
  const char *Input = nullptr;
  bool Timing = false;
  std::string Decider = "lfsr";
  uint64_t Seed = 0x2c9277b5;
  uint64_t MaxInsts = 1ULL << 32;
  uint64_t PrintInsts = 0;
  std::string TracePath;
  bool Counters = false;
  std::vector<std::string> DumpSymbols;
  std::string CheckpointPath;
  uint64_t CheckpointAt = 0;
  bool Resume = false;
  std::string CkptDir;
  uint64_t CkptEvery = 100000;
  uint64_t ResumeAt = 0;
  bool HasResumeAt = false;
};

bool parseArgs(int Argc, char **Argv, Options &Opt) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--timing") == 0) {
      Opt.Timing = true;
    } else if (std::strncmp(A, "--decider=", 10) == 0) {
      Opt.Decider = A + 10;
    } else if (std::strncmp(A, "--seed=", 7) == 0) {
      Opt.Seed = std::strtoull(A + 7, nullptr, 0);
    } else if (std::strncmp(A, "--max-insts=", 12) == 0) {
      Opt.MaxInsts = std::strtoull(A + 12, nullptr, 0);
    } else if (std::strncmp(A, "--print-insts=", 14) == 0) {
      Opt.PrintInsts = std::strtoull(A + 14, nullptr, 0);
    } else if (std::strncmp(A, "--trace=", 8) == 0) {
      Opt.TracePath = A + 8;
    } else if (std::strcmp(A, "--counters") == 0) {
      Opt.Counters = true;
    } else if (std::strncmp(A, "--dump-sym=", 11) == 0) {
      Opt.DumpSymbols.push_back(A + 11);
    } else if (std::strncmp(A, "--checkpoint=", 13) == 0) {
      Opt.CheckpointPath = A + 13;
    } else if (std::strncmp(A, "--checkpoint-at=", 16) == 0) {
      Opt.CheckpointAt = std::strtoull(A + 16, nullptr, 0);
    } else if (std::strcmp(A, "--resume") == 0) {
      Opt.Resume = true;
    } else if (std::strncmp(A, "--ckpt-dir=", 11) == 0) {
      Opt.CkptDir = A + 11;
    } else if (std::strncmp(A, "--ckpt-every=", 13) == 0) {
      Opt.CkptEvery = std::strtoull(A + 13, nullptr, 0);
    } else if (std::strncmp(A, "--resume-at=", 12) == 0) {
      Opt.ResumeAt = std::strtoull(A + 12, nullptr, 0);
      Opt.HasResumeAt = true;
    } else if (A[0] == '-') {
      return false;
    } else if (!Opt.Input) {
      Opt.Input = A;
    } else {
      return false;
    }
  }
  return Opt.Input != nullptr;
}

std::unique_ptr<BrrDecider> makeDecider(const Options &Opt) {
  if (Opt.Decider == "lfsr") {
    BrrUnitConfig Cfg;
    Cfg.Seed = Opt.Seed;
    return std::make_unique<BrrUnitDecider>(Cfg);
  }
  if (Opt.Decider == "counter")
    return std::make_unique<HwCounterDecider>();
  if (Opt.Decider == "never")
    return std::make_unique<NeverTakenDecider>();
  if (Opt.Decider == "always")
    return std::make_unique<AlwaysTakenDecider>();
  return nullptr;
}

void dumpSymbols(const Options &Opt, const Program &P, const Machine &M) {
  for (const std::string &Name : Opt.DumpSymbols) {
    if (!P.hasSymbol(Name)) {
      std::printf("%s = <unknown symbol>\n", Name.c_str());
      continue;
    }
    std::printf("%s = %" PRIu64 "\n", Name.c_str(),
                M.memory().readU64(P.symbol(Name)));
  }
}

/// The tool-level objects behind --trace / --counters. Construct before
/// the simulator objects; call finish() after they are destroyed, since
/// simulators publish their counters from their destructors.
struct ToolTelemetry {
  explicit ToolTelemetry(const Options &Opt) {
    if (Opt.Counters)
      telemetry::CounterRegistry::setEnabled(true);
    if (!Opt.TracePath.empty()) {
      Trace = std::make_unique<telemetry::TraceWriter>();
      Sink.Trace = Trace.get();
      Sink.DetailEvents = true;
    }
  }

  /// The sink the pipeline observes, or null when --trace was not given
  /// (counters flow through the process-wide registry regardless).
  const telemetry::TelemetrySink *sink() const {
    return Trace ? &Sink : nullptr;
  }

  /// Writes the trace file and prints the counter snapshot. Returns false
  /// when the trace cannot be written.
  bool finish(const Options &Opt) const {
    if (Trace) {
      std::string Err;
      if (!Trace->writeTo(Opt.TracePath, Err)) {
        std::fprintf(stderr, "bor-run: --trace: %s\n", Err.c_str());
        return false;
      }
    }
    if (Opt.Counters)
      std::fputs(
          telemetry::CounterRegistry::instance().snapshot().render().c_str(),
          stdout);
    return true;
  }

  std::unique_ptr<telemetry::TraceWriter> Trace;
  telemetry::TelemetrySink Sink;
};

void printFunctionalStats(const RunStats &S) {
  std::printf("insts %" PRIu64 ", cond branches %" PRIu64 " (%" PRIu64
              " taken), brr %" PRIu64 " (%" PRIu64 " taken), loads %" PRIu64
              ", stores %" PRIu64 ", halted %s\n",
              S.Insts, S.CondBranches, S.CondTaken, S.BrrExecuted,
              S.BrrTaken, S.Loads, S.Stores, S.Halted ? "yes" : "no");
}

/// --resume: the input is a checkpoint image; restore and continue under
/// either model.
int resumeMain(const Options &Opt) {
  Program P;
  MachineCheckpoint C;
  std::string Err;
  if (!loadCheckpointFile(Opt.Input, P, C, Err)) {
    std::fprintf(stderr, "bor-run: %s\n", Err.c_str());
    return 1;
  }

  std::unique_ptr<BrrDecider> Decider = makeDecider(Opt);
  if (!Decider) {
    std::fprintf(stderr, "bor-run: unknown decider '%s'\n",
                 Opt.Decider.c_str());
    return 2;
  }
  Machine M;
  if (!restoreCheckpoint(C, M, *Decider, Err)) {
    std::fprintf(stderr, "bor-run: %s (pass the matching --decider)\n",
                 Err.c_str());
    return 2;
  }
  std::printf("resumed at pc %" PRIu64 " after %" PRIu64 " insts\n", M.pc(),
              C.InstsRetired);

  ToolTelemetry Tel(Opt);
  DecodedProgram Dec(P);
  int Rc;
  if (Opt.Timing) {
    MicroarchState Uarch((PipelineConfig()));
    {
      Pipeline Pipe(Dec, M, Uarch, PipelineConfig(), *Decider);
      Pipe.setTelemetry(Tel.sink());
      telemetry::TraceSpan Span(Tel.Trace.get(), "resume", "bor-run");
      RunResult Result = Pipe.run(Opt.MaxInsts, /*RequireHalt=*/false);
      Span.close();
      std::printf("%s", describeStats(Result.Stats).c_str());
    }
    // The attached Pipeline borrows Uarch and so never publishes it; this
    // run owns it, so publish once here.
    publishUarchCounters(Uarch);
    dumpSymbols(Opt, P, M);
    Rc = M.halted() ? 0 : 1;
  } else {
    {
      Interpreter Interp(Dec, M, *Decider, /*LoadImage=*/false);
      telemetry::TraceSpan Span(Tel.Trace.get(), "resume", "bor-run");
      RunStats S = Interp.run(Opt.MaxInsts, /*RequireHalt=*/false);
      Span.close();
      printFunctionalStats(S);
      Rc = S.Halted ? 0 : 1;
    }
    dumpSymbols(Opt, P, M);
  }
  Decider.reset();
  if (!Tel.finish(Opt))
    return 1;
  return Rc;
}

/// --ckpt-dir: build (or load from the cache directory) the program's COW
/// checkpoint library, then optionally resume from it. Functional mode,
/// lfsr decider only — the library records the decider stream.
int ckptLibraryMain(const Options &Opt, const LoadResult &R) {
  if (Opt.Timing) {
    std::fprintf(stderr,
                 "bor-run: --ckpt-dir builds functional checkpoints; drop "
                 "--timing\n");
    return 2;
  }
  if (Opt.Decider != "lfsr") {
    std::fprintf(stderr,
                 "bor-run: checkpoint libraries record the lfsr decider "
                 "stream; --decider=%s cannot resume from one\n",
                 Opt.Decider.c_str());
    return 2;
  }
  if (Opt.CkptEvery == 0) {
    std::fprintf(stderr, "bor-run: --ckpt-every needs a whole number >= 1\n");
    return 2;
  }

  ToolTelemetry Tel(Opt);
  BrrUnitConfig Cfg;
  Cfg.Seed = Opt.Seed;
  DecodedProgram Dec(R.Prog);
  int Rc = 0;
  {
    ckpt::LibraryPool Pool(Opt.CkptDir);
    std::shared_ptr<const ckpt::CheckpointLibrary> Lib =
        Pool.getOrBuild(Dec, Cfg, Opt.CkptEvery, Tel.sink());
    std::printf("checkpoint library %s: %zu checkpoints every %" PRIu64
                " insts, %" PRIu64 " insts total, %zu distinct pages\n",
                Pool.cachePathFor(
                        ckpt::LibraryPool::keyFor(R.Prog, Cfg, Opt.CkptEvery))
                    .c_str(),
                Lib->numCheckpoints(), Lib->periodInsts(), Lib->totalInsts(),
                Lib->numStoredPages());

    if (Opt.HasResumeAt) {
      const ckpt::LibraryCheckpoint *C =
          Lib->nearestAtOrBefore(Opt.ResumeAt);
      if (!C) {
        std::fprintf(stderr,
                     "bor-run: no library checkpoint at or before inst "
                     "%" PRIu64 "\n",
                     Opt.ResumeAt);
        return 1;
      }
      Machine M;
      BrrUnitDecider Decider(Cfg);
      std::string Err;
      if (!Lib->resume(*C, M, Decider, Err)) {
        std::fprintf(stderr, "bor-run: %s\n", Err.c_str());
        return 1;
      }
      std::printf("resumed at inst %" PRIu64 " (nearest checkpoint at or "
                  "before %" PRIu64 "), pc %" PRIu64 "\n",
                  C->InstsRetired, Opt.ResumeAt, M.pc());
      {
        Interpreter Interp(Dec, M, Decider, /*LoadImage=*/false);
        telemetry::TraceSpan Span(Tel.Trace.get(), "resume", "bor-run");
        if (Opt.ResumeAt > C->InstsRetired)
          Interp.run(Opt.ResumeAt - C->InstsRetired, /*RequireHalt=*/false);
        uint64_t Global = C->InstsRetired + Interp.stats().Insts;
        uint64_t Budget = Opt.MaxInsts > Global ? Opt.MaxInsts - Global : 0;
        RunStats S = Interp.run(Budget, /*RequireHalt=*/false);
        Span.close();
        printFunctionalStats(S);
        Rc = S.Halted ? 0 : 1;
      }
      dumpSymbols(Opt, R.Prog, M);
    }
  }
  if (!Tel.finish(Opt))
    return 1;
  return Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  if (!parseArgs(Argc, Argv, Opt)) {
    std::fprintf(stderr,
                 "usage: bor-run program.borb [--timing] "
                 "[--decider=lfsr|counter|never|always] [--seed=N] "
                 "[--max-insts=N] [--print-insts=N] [--dump-sym=NAME]...\n"
                 "       [--trace=PATH] [--counters] "
                 "[--checkpoint=PATH [--checkpoint-at=N]] "
                 "[--resume]\n"
                 "       [--ckpt-dir=DIR [--ckpt-every=N] [--resume-at=N]]\n");
    return 2;
  }
  if (Opt.HasResumeAt && Opt.CkptDir.empty()) {
    std::fprintf(stderr, "bor-run: --resume-at needs --ckpt-dir\n");
    return 2;
  }
  if (Opt.Resume)
    return resumeMain(Opt);

  LoadResult R = loadProgramFile(Opt.Input);
  if (!R.Ok) {
    std::fprintf(stderr, "bor-run: %s\n", R.Error.c_str());
    return 1;
  }

  if (!Opt.CkptDir.empty())
    return ckptLibraryMain(Opt, R);

  std::unique_ptr<BrrDecider> Decider = makeDecider(Opt);
  if (!Decider) {
    std::fprintf(stderr, "bor-run: unknown decider '%s'\n",
                 Opt.Decider.c_str());
    return 2;
  }
  if (!Opt.CheckpointPath.empty() && Opt.Timing) {
    std::fprintf(stderr,
                 "bor-run: --checkpoint snapshots architectural state and "
                 "is a functional-mode feature; drop --timing (a later "
                 "--resume --timing run times the rest)\n");
    return 2;
  }

  ToolTelemetry Tel(Opt);
  // Decode once up front; both models execute the decoded image.
  DecodedProgram Dec(R.Prog);
  int Rc;
  if (Opt.Timing) {
    // Inner scope: the Pipeline publishes its counters on destruction, and
    // that has to happen before Tel.finish() renders the snapshot.
    {
      Pipeline Pipe(Dec, PipelineConfig(), Decider.get());
      Pipe.setTelemetry(Tel.sink());
      telemetry::TraceSpan Span(Tel.Trace.get(), "run", "bor-run");
      RunResult Result = Pipe.run(Opt.MaxInsts, /*RequireHalt=*/false);
      Span.close();
      std::printf("%s", describeStats(Result.Stats).c_str());
      for (const MarkerEvent &E : Result.Markers)
        std::printf("marker %d at cycle %" PRIu64 " (inst %" PRIu64 ")\n",
                    E.Id, E.CommitCycle, E.InstsRetired);
      dumpSymbols(Opt, R.Prog, Pipe.machine());
      Rc = Pipe.machine().halted() ? 0 : 1;
    }
    Decider.reset();
    if (!Tel.finish(Opt))
      return 1;
    return Rc;
  }

  Machine M;
  {
    Interpreter Interp(Dec, M, *Decider);
    telemetry::TraceSpan Span(Tel.Trace.get(), "run", "bor-run");
    for (uint64_t I = 0; I != Opt.PrintInsts && !Interp.halted(); ++I) {
      ExecRecord Rec = Interp.step();
      std::printf("%6" PRIu64 "  %s\n", Rec.Pc / 4,
                  disassemble(Rec.I, static_cast<int64_t>(Rec.Pc / 4))
                      .c_str());
    }

    if (!Opt.CheckpointPath.empty()) {
      uint64_t Already = Interp.stats().Insts;
      if (Opt.CheckpointAt > Already)
        Interp.run(Opt.CheckpointAt - Already, /*RequireHalt=*/false);
      MachineCheckpoint C =
          captureCheckpoint(M, *Decider, Interp.stats().Insts);
      if (!saveCheckpointFile(R.Prog, C, Opt.CheckpointPath)) {
        std::fprintf(stderr, "bor-run: cannot write checkpoint '%s'\n",
                     Opt.CheckpointPath.c_str());
        return 1;
      }
      std::printf("checkpoint written to %s at inst %" PRIu64 "\n",
                  Opt.CheckpointPath.c_str(), C.InstsRetired);
    }

    uint64_t Budget = Opt.MaxInsts > Interp.stats().Insts
                          ? Opt.MaxInsts - Interp.stats().Insts
                          : 0;
    RunStats S = Interp.run(Budget, /*RequireHalt=*/false);
    Span.close();
    printFunctionalStats(S);
    Rc = S.Halted ? 0 : 1;
  }
  dumpSymbols(Opt, R.Prog, M);
  Decider.reset();
  if (!Tel.finish(Opt))
    return 1;
  return Rc;
}
