//===- tools/bor-report.cpp - Perf-regression report ----------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two bor-bench runs — run dirs written by --run-dir, or bare
/// committed baselines like bench/BENCH_fig13.json — and prints a Markdown
/// report of every significant metric change. Exit status is the verdict:
///
///   0  clean (no regressions, no structural differences)
///   1  regressions or structural differences found
///   2  usage or I/O error
///
/// See docs/REPORTING.md for the workflow.
///
//===----------------------------------------------------------------------===//

#include "exp/Manifest.h"
#include "exp/Report.h"
#include "support/Path.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace bor;
using namespace bor::exp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bor-report BASELINE CANDIDATE [options]\n"
      "\n"
      "  BASELINE/CANDIDATE   a --run-dir directory, a manifest.json, or a\n"
      "                       bare JSON-lines results file (BENCH_*.json)\n"
      "\n"
      "options:\n"
      "  --threshold-pct N    significance gate in percent (default 2)\n"
      "  --threshold NAME=N   per-metric override of --threshold-pct\n"
      "  --out PATH           also write the Markdown report to PATH\n"
      "  --max-rows N         cap the metric-change table (default 50)\n");
  return 2;
}

/// Accepts "--flag value" and "--flag=value"; advances \p I for the
/// two-token form. Returns nullptr when \p Arg is not \p Flag.
const char *flagValue(const char *Flag, char **Argv, int Argc, int &I) {
  const char *A = Argv[I];
  size_t N = std::strlen(Flag);
  if (std::strncmp(A, Flag, N) != 0)
    return nullptr;
  if (A[N] == '=')
    return A + N + 1;
  if (A[N] != '\0')
    return nullptr;
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "bor-report: %s needs a value\n", Flag);
    std::exit(2);
  }
  return Argv[++I];
}

bool parseDouble(const char *Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text, &End);
  return End != Text && *End == '\0';
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  ReportOptions Opt;
  std::string OutPath;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (const char *V = flagValue("--threshold-pct", Argv, Argc, I)) {
      if (!parseDouble(V, Opt.ThresholdPct) || Opt.ThresholdPct < 0) {
        std::fprintf(stderr, "bor-report: bad --threshold-pct '%s'\n", V);
        return 2;
      }
    } else if (const char *V = flagValue("--threshold", Argv, Argc, I)) {
      const char *Eq = std::strchr(V, '=');
      double Pct = 0;
      if (!Eq || Eq == V || !parseDouble(Eq + 1, Pct) || Pct < 0) {
        std::fprintf(stderr,
                     "bor-report: --threshold wants NAME=PCT, got '%s'\n", V);
        return 2;
      }
      Opt.MetricThresholds.emplace_back(std::string(V, Eq - V), Pct);
    } else if (const char *V = flagValue("--out", Argv, Argc, I)) {
      OutPath = V;
    } else if (const char *V = flagValue("--max-rows", Argv, Argc, I)) {
      char *End = nullptr;
      unsigned long N = std::strtoul(V, &End, 10);
      if (End == V || *End != '\0') {
        std::fprintf(stderr, "bor-report: bad --max-rows '%s'\n", V);
        return 2;
      }
      Opt.MaxRows = N;
    } else if (A[0] == '-') {
      std::fprintf(stderr, "bor-report: unknown flag '%s'\n", A);
      return usage();
    } else {
      Paths.push_back(A);
    }
  }
  if (Paths.size() != 2)
    return usage();

  LoadedRun Base, Cand;
  std::string Err;
  if (!loadRun(Paths[0], Base, Err)) {
    std::fprintf(stderr, "bor-report: baseline: %s\n", Err.c_str());
    return 2;
  }
  if (!loadRun(Paths[1], Cand, Err)) {
    std::fprintf(stderr, "bor-report: candidate: %s\n", Err.c_str());
    return 2;
  }

  ReportResult Result = compareRuns(Base, Cand, Opt);
  std::fputs(Result.Markdown.c_str(), stdout);

  if (!OutPath.empty()) {
    if (!ensureParentDirs(OutPath, Err)) {
      std::fprintf(stderr, "bor-report: %s\n", Err.c_str());
      return 2;
    }
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "bor-report: cannot open '%s' for writing\n",
                   OutPath.c_str());
      return 2;
    }
    bool Ok = std::fputs(Result.Markdown.c_str(), F) >= 0;
    Ok = std::fclose(F) == 0 && Ok;
    if (!Ok) {
      std::fprintf(stderr, "bor-report: error writing '%s'\n",
                   OutPath.c_str());
      return 2;
    }
  }
  return Result.clean() ? 0 : 1;
}
