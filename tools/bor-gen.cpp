//===- tools/bor-gen.cpp - Workload generator driver -----------------------===//
//
// Builds any of the library's workloads as a BORB image, with the sampling
// framework configured on the command line:
//
//   bor-gen micro               [options] -o out.borb
//   bor-gen app:<bloat|fop|luindex|lusearch|jython>      [options]
//   bor-gen kernel:<crc32|sort|strsearch|matmul|listsum> [options]
//
//   --framework=none|full|cbs|brr    sampling framework (default none)
//   --interval=N                     sampling interval (default 1024)
//   --full-dup                       Arnold-Ryder Full-Duplication
//   --framework-only                 omit the instrumentation bodies
//   --size=N                         workload size override
//   --seed=N                         workload seed override
//
// The generated image carries its profile tables as data symbols, so
// `bor-run out.borb --timing --dump-sym=sites` closes the loop.
//
//===----------------------------------------------------------------------===//

#include "isa/Serialize.h"
#include "workloads/AppGen.h"
#include "workloads/Kernels.h"
#include "workloads/Microbench.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace bor;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: bor-gen <micro|app:NAME|kernel:NAME> [-o out.borb]\n"
      "               [--framework=none|full|cbs|brr] [--interval=N]\n"
      "               [--full-dup] [--framework-only] [--size=N] "
      "[--seed=N]\n");
}

bool parseFramework(const std::string &Name, SamplingFramework &Out) {
  if (Name == "none")
    Out = SamplingFramework::None;
  else if (Name == "full")
    Out = SamplingFramework::Full;
  else if (Name == "cbs")
    Out = SamplingFramework::CounterBased;
  else if (Name == "brr")
    Out = SamplingFramework::BrrBased;
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Workload;
  const char *Output = "a.borb";
  InstrumentationConfig Instr;
  uint64_t Size = 0;
  uint64_t Seed = 0;
  bool HaveSeed = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "-o") == 0 && I + 1 < Argc) {
      Output = Argv[++I];
    } else if (std::strncmp(A, "--framework=", 12) == 0) {
      if (!parseFramework(A + 12, Instr.Framework)) {
        usage();
        return 2;
      }
    } else if (std::strncmp(A, "--interval=", 11) == 0) {
      Instr.Interval = std::strtoull(A + 11, nullptr, 0);
    } else if (std::strcmp(A, "--full-dup") == 0) {
      Instr.Dup = DuplicationMode::FullDuplication;
    } else if (std::strcmp(A, "--framework-only") == 0) {
      Instr.IncludeBody = false;
    } else if (std::strncmp(A, "--size=", 7) == 0) {
      Size = std::strtoull(A + 7, nullptr, 0);
    } else if (std::strncmp(A, "--seed=", 7) == 0) {
      Seed = std::strtoull(A + 7, nullptr, 0);
      HaveSeed = true;
    } else if (A[0] != '-' && Workload.empty()) {
      Workload = A;
    } else {
      usage();
      return 2;
    }
  }
  if (Workload.empty()) {
    usage();
    return 2;
  }

  Program Prog;
  std::string Description;

  if (Workload == "micro") {
    MicrobenchConfig C;
    if (Size)
      C.Text.NumChars = Size;
    if (HaveSeed)
      C.Text.Seed = Seed;
    C.Instr = Instr;
    MicrobenchProgram MB = buildMicrobench(C);
    Prog = std::move(MB.Prog);
    Description = "microbenchmark, " +
                  std::to_string(MB.DynamicSiteVisits) + " site visits";
  } else if (Workload.rfind("app:", 0) == 0) {
    std::string Name = Workload.substr(4);
    bool Found = false;
    for (AppConfig App : dacapoAppAnalogues()) {
      if (App.Name != Name)
        continue;
      Found = true;
      if (Size)
        App.NumTopCalls = Size;
      if (HaveSeed)
        App.Seed = Seed;
      App.Instr = Instr;
      AppProgram P = buildApp(App);
      Prog = std::move(P.Prog);
      Description = "application analogue '" + Name + "', " +
                    std::to_string(P.DynamicSiteVisits) + " invocations";
    }
    if (!Found) {
      std::fprintf(stderr, "bor-gen: unknown application '%s'\n",
                   Name.c_str());
      return 2;
    }
  } else if (Workload.rfind("kernel:", 0) == 0) {
    std::string Name = Workload.substr(7);
    KernelConfig C;
    bool Found = false;
    for (KernelKind Kind :
         {KernelKind::Crc32, KernelKind::Sort, KernelKind::StrSearch,
          KernelKind::MatMul, KernelKind::ListSum}) {
      if (Name == kernelName(Kind)) {
        C.Kind = Kind;
        Found = true;
      }
    }
    if (!Found) {
      std::fprintf(stderr, "bor-gen: unknown kernel '%s'\n", Name.c_str());
      return 2;
    }
    C.Size = Size;
    if (HaveSeed)
      C.Seed = Seed;
    C.Instr = Instr;
    KernelProgram K = buildKernel(C);
    Prog = std::move(K.Prog);
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "kernel '%s', expected result %llu", K.Name.c_str(),
                  static_cast<unsigned long long>(K.ExpectedResult));
    Description = Buf;
  } else {
    usage();
    return 2;
  }

  if (!saveProgram(Prog, Output)) {
    std::fprintf(stderr, "bor-gen: error: cannot write '%s'\n", Output);
    return 1;
  }
  std::fprintf(stderr, "bor-gen: %s (%s) -> %s (%zu instructions)\n",
               Description.c_str(), describeConfig(Instr).c_str(), Output,
               Prog.numInsts());
  return 0;
}
