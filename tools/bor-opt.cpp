//===- tools/bor-opt.cpp - Profile-guided layout optimizer driver ---------===//
//
// Re-linearizes a BORB image with the profile-guided layout passes:
//
//   bor-opt in.borb -o out.borb --profile p.json     # sampled profile
//   bor-opt in.borb -o out.borb --collect oracle     # exact interpreter
//   bor-opt in.borb -o out.borb                      # structural passes only
//
// Options:
//   --profile FILE       bor-profile-v1 JSON (block-keyed counts)
//   --collect oracle     run the interpreter, collect an exact profile
//   --emit-profile FILE  write the profile used (for bor-dis --profile)
//   --cold-divisor N     cold threshold (default 64)
//   --no-branch-direction / --no-hot-cold / --no-outline   disable a pass
//   --keep-jumps         keep jmp-to-next instead of eliding it
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "isa/Serialize.h"
#include "opt/Passes.h"
#include "opt/ProfileMap.h"
#include "sim/Machine.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace bor;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bor-opt in.borb -o out.borb [--profile FILE | --collect "
      "oracle]\n               [--emit-profile FILE] [--cold-divisor N]\n"
      "               [--no-branch-direction] [--no-hot-cold] "
      "[--no-outline] [--keep-jumps]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string InputPath, OutputPath, ProfilePath, EmitProfilePath;
  bool CollectOracle = false;
  opt::LayoutOptions Opts;
  cfg::EmitOptions Emit;
  Emit.ElideJumpToNext = true;

  for (int I = 1; I != Argc; ++I) {
    auto Arg = [&](const char *Name, std::string &Out) {
      if (std::strcmp(Argv[I], Name) != 0)
        return false;
      if (++I == Argc)
        std::exit(usage());
      Out = Argv[I];
      return true;
    };
    std::string Val;
    if (std::strcmp(Argv[I], "-o") == 0) {
      if (++I == Argc)
        return usage();
      OutputPath = Argv[I];
    } else if (Arg("--profile", ProfilePath) ||
               Arg("--emit-profile", EmitProfilePath)) {
    } else if (Arg("--collect", Val)) {
      if (Val != "oracle") {
        std::fprintf(stderr, "bor-opt: unknown profile collector '%s'\n",
                     Val.c_str());
        return 2;
      }
      CollectOracle = true;
    } else if (Arg("--cold-divisor", Val)) {
      Opts.ColdDivisor = std::strtoull(Val.c_str(), nullptr, 10);
      if (Opts.ColdDivisor == 0) {
        std::fprintf(stderr, "bor-opt: --cold-divisor must be positive\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--no-branch-direction") == 0) {
      Opts.BranchDirection = false;
    } else if (std::strcmp(Argv[I], "--no-hot-cold") == 0) {
      Opts.HotColdSplit = false;
    } else if (std::strcmp(Argv[I], "--no-outline") == 0) {
      Opts.OutlineCold = false;
    } else if (std::strcmp(Argv[I], "--keep-jumps") == 0) {
      Emit.ElideJumpToNext = false;
    } else if (Argv[I][0] == '-') {
      return usage();
    } else if (InputPath.empty()) {
      InputPath = Argv[I];
    } else {
      return usage();
    }
  }
  if (InputPath.empty() || OutputPath.empty())
    return usage();
  if (!ProfilePath.empty() && CollectOracle) {
    std::fprintf(stderr,
                 "bor-opt: --profile and --collect are mutually exclusive\n");
    return 2;
  }

  LoadResult R = loadProgramFile(InputPath);
  if (!R.Ok) {
    std::fprintf(stderr, "bor-opt: %s\n", R.Error.c_str());
    return 1;
  }

  opt::ProfileMap Prof;
  if (!ProfilePath.empty()) {
    std::ifstream In(ProfilePath);
    if (!In) {
      std::fprintf(stderr, "bor-opt: cannot read %s\n", ProfilePath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    if (!opt::ProfileMap::fromJson(Buf.str(), Prof, Err)) {
      std::fprintf(stderr, "bor-opt: %s: %s\n", ProfilePath.c_str(),
                   Err.c_str());
      return 1;
    }
  } else if (CollectOracle) {
    BrrUnitDecider D;
    Prof = opt::collectOracleProfile(R.Prog, D, 1ULL << 28);
  }

  if (!EmitProfilePath.empty()) {
    std::ofstream Out(EmitProfilePath);
    if (!Out) {
      std::fprintf(stderr, "bor-opt: cannot write %s\n",
                   EmitProfilePath.c_str());
      return 1;
    }
    Out << Prof.toJson() << "\n";
  }

  cfg::Module M = cfg::buildModule(R.Prog);
  opt::LayoutStats LS = opt::optimizeLayout(M, Prof, Opts);
  cfg::EmitStats ES;
  Program Optimized = cfg::emitProgram(M, Emit, &ES);

  if (!saveProgram(Optimized, OutputPath)) {
    std::fprintf(stderr, "bor-opt: cannot write %s\n", OutputPath.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bor-opt: %zu blocks, %zu traces, %zu flips, %zu cold + %zu "
               "brr outlined; emitted %zu insts (%zu inverted, %zu jumps "
               "inserted, %zu elided, %zu relaxed)\n",
               M.numBlocks(), LS.Traces, LS.HotFallthroughs, LS.ColdOutlined,
               LS.BrrOutlined, ES.Insts, ES.InvertedBranches,
               ES.InsertedJumps, ES.ElidedJumps, ES.RelaxedBranches);
  return 0;
}
