//===- tools/bor-pipeview.cpp - Pipeline diagram viewer --------------------===//
//
// Renders a pipeline diagram for the first instructions of a BORB image:
//
//   bor-pipeview program.borb [--insts=N] [--skip=N] [--decider=...]
//
//===----------------------------------------------------------------------===//

#include "isa/Serialize.h"
#include "uarch/Pipeview.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace bor;

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  size_t Insts = 48;
  uint64_t Skip = 0;
  std::string Decider = "counter"; // deterministic view by default

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--insts=", 8) == 0)
      Insts = std::strtoull(A + 8, nullptr, 0);
    else if (std::strncmp(A, "--skip=", 7) == 0)
      Skip = std::strtoull(A + 7, nullptr, 0);
    else if (std::strncmp(A, "--decider=", 10) == 0)
      Decider = A + 10;
    else if (A[0] != '-' && !Input)
      Input = A;
    else {
      std::fprintf(stderr, "usage: bor-pipeview program.borb [--insts=N] "
                           "[--skip=N] [--decider=lfsr|counter]\n");
      return 2;
    }
  }
  if (!Input) {
    std::fprintf(stderr, "usage: bor-pipeview program.borb [--insts=N] "
                         "[--skip=N] [--decider=lfsr|counter]\n");
    return 2;
  }

  LoadResult R = loadProgramFile(Input);
  if (!R.Ok) {
    std::fprintf(stderr, "bor-pipeview: %s\n", R.Error.c_str());
    return 1;
  }

  std::unique_ptr<BrrDecider> D;
  if (Decider == "lfsr")
    D = std::make_unique<BrrUnitDecider>();
  else
    D = std::make_unique<HwCounterDecider>();

  Pipeline Pipe(R.Prog, PipelineConfig(), D.get());
  PipeviewRecorder Recorder(Insts, Skip);
  Recorder.attach(Pipe);
  Pipe.run(Skip + Insts + 4096, /*RequireHalt=*/false);
  std::printf("%s", Recorder.render().c_str());
  return 0;
}
