//===- tools/bor-dis.cpp - BOR-RISC disassembler driver --------------------===//
//
// Disassembles a BORB image to stdout:
//
//   bor-dis program.borb
//   bor-dis --cfg program.borb                annotate block boundaries/edges
//   bor-dis --cfg --profile p.json prog.borb  add per-block hot counts
//
// --profile takes a "bor-profile-v1" JSON file (bor-opt --emit-profile
// writes one) keyed to the same block ids --cfg prints.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "isa/Disasm.h"
#include "isa/Serialize.h"
#include "opt/ProfileMap.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace bor;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bor-dis [--cfg] [--profile FILE] program.borb\n");
  return 2;
}

const char *edgeName(cfg::EdgeKind K) {
  switch (K) {
  case cfg::EdgeKind::Fall:
    return "fall";
  case cfg::EdgeKind::Taken:
    return "taken";
  case cfg::EdgeKind::BrrTaken:
    return "brr";
  case cfg::EdgeKind::Call:
    return "call";
  }
  return "?";
}

int disassembleCfg(const Program &P, const opt::ProfileMap *Prof) {
  cfg::Module M = cfg::buildModule(P);
  M.computeFunctions();
  size_t Index = 0;
  for (cfg::BlockId Id : M.layout()) {
    const cfg::BasicBlock &B = M.block(Id);
    std::string Hdr = "; b" + std::to_string(Id);
    uint32_t Fn = M.functionOf(Id);
    if (Fn != cfg::NoFunction) {
      const cfg::Function &F = M.functions()[Fn];
      Hdr += " fn=" + (F.Name.empty() ? "f" + std::to_string(Fn) : F.Name);
    }
    if (Prof) {
      if (Prof->hasBlock(Id)) {
        Hdr += " exec=" + std::to_string(Prof->execCount(Id));
        if (Prof->takenCount(Id))
          Hdr += " taken=" + std::to_string(Prof->takenCount(Id));
      } else {
        Hdr += Prof->complete() ? " exec=0" : " exec=?";
      }
    }
    if (!B.Succs.empty()) {
      Hdr += "  succs:";
      for (const cfg::Edge &E : B.Succs)
        Hdr += std::string(" ") + edgeName(E.Kind) + "->b" +
               std::to_string(E.Dst);
    }
    std::printf("%s\n", Hdr.c_str());
    for (const cfg::CodeSymbol &S : M.codeSymbols())
      if (S.Block == Id && S.Offset == 0)
        std::printf("; %s:\n", S.Name.c_str());
    for (size_t I = 0; I != B.Insts.size(); ++I, ++Index)
      std::printf("%5zu:  %s\n", Index,
                  disassemble(B.Insts[I], static_cast<int64_t>(Index))
                      .c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Cfg = false;
  std::string ProfilePath, InputPath;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--cfg") == 0) {
      Cfg = true;
    } else if (std::strcmp(Argv[I], "--profile") == 0) {
      if (++I == Argc)
        return usage();
      ProfilePath = Argv[I];
      Cfg = true; // profile counts only make sense per block
    } else if (Argv[I][0] == '-') {
      return usage();
    } else if (InputPath.empty()) {
      InputPath = Argv[I];
    } else {
      return usage();
    }
  }
  if (InputPath.empty())
    return usage();

  LoadResult R = loadProgramFile(InputPath);
  if (!R.Ok) {
    std::fprintf(stderr, "bor-dis: %s\n", R.Error.c_str());
    return 1;
  }

  opt::ProfileMap Prof;
  bool HaveProfile = false;
  if (!ProfilePath.empty()) {
    std::ifstream In(ProfilePath);
    if (!In) {
      std::fprintf(stderr, "bor-dis: cannot read %s\n", ProfilePath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    if (!opt::ProfileMap::fromJson(Buf.str(), Prof, Err)) {
      std::fprintf(stderr, "bor-dis: %s: %s\n", ProfilePath.c_str(),
                   Err.c_str());
      return 1;
    }
    HaveProfile = true;
  }

  if (Cfg)
    disassembleCfg(R.Prog, HaveProfile ? &Prof : nullptr);
  else
    std::printf("%s", disassemble(R.Prog).c_str());

  if (!R.Prog.symbols().empty()) {
    std::printf("\nsymbols:\n");
    for (const auto &[Name, Addr] : R.Prog.symbols())
      std::printf("  %-24s 0x%" PRIx64 "\n", Name.c_str(), Addr);
  }
  std::printf("\ndata: %zu bytes at 0x%" PRIx64 "\n", R.Prog.data().size(),
              R.Prog.dataBase());
  return 0;
}
