//===- tools/bor-dis.cpp - BOR-RISC disassembler driver --------------------===//
//
// Disassembles a BORB image to stdout:
//
//   bor-dis program.borb
//
//===----------------------------------------------------------------------===//

#include "isa/Disasm.h"
#include "isa/Serialize.h"

#include <cinttypes>
#include <cstdio>

using namespace bor;

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: bor-dis program.borb\n");
    return 2;
  }
  LoadResult R = loadProgramFile(Argv[1]);
  if (!R.Ok) {
    std::fprintf(stderr, "bor-dis: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("%s", disassemble(R.Prog).c_str());
  if (!R.Prog.symbols().empty()) {
    std::printf("\nsymbols:\n");
    for (const auto &[Name, Addr] : R.Prog.symbols())
      std::printf("  %-24s 0x%" PRIx64 "\n", Name.c_str(), Addr);
  }
  std::printf("\ndata: %zu bytes at 0x%" PRIx64 "\n", R.Prog.data().size(),
              R.Prog.dataBase());
  return 0;
}
