//===- tools/bor-bench.cpp - Unified experiment-runner CLI ----------------===//
//
// Drives every experiment registered with the experiment registry
// (Figures 2/9/10/12/13/14, the design ablation, the sensitivity sweep):
//
//   bor-bench --list
//   bor-bench --experiment fig13 --threads 8 --json out.json
//   bor-bench --all --scale 10
//
// Grid cells run in parallel on a fixed-size thread pool; results are
// collected in deterministic spec order, so the emitted table and the
// BENCH_<name>.json trajectory are byte-identical for any --threads value.
// See docs/BENCHMARKING.md.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

int main(int Argc, char **Argv) { return bor::exp::benchMain(Argc, Argv); }
