//===- tools/bor-as.cpp - BOR-RISC assembler driver ------------------------===//
//
// Assembles a BOR-RISC text file into a BORB binary image:
//
//   bor-as input.s -o out.borb
//
//===----------------------------------------------------------------------===//

#include "isa/Assembler.h"
#include "isa/Serialize.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace bor;

static std::string readFile(const char *Path, bool &Ok) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F) {
    Ok = false;
    return "";
  }
  std::string Out;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  Ok = true;
  return Out;
}

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  const char *Output = "a.borb";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc) {
      Output = Argv[++I];
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "usage: bor-as input.s [-o out.borb]\n");
      return 2;
    } else {
      Input = Argv[I];
    }
  }
  if (!Input) {
    std::fprintf(stderr, "usage: bor-as input.s [-o out.borb]\n");
    return 2;
  }

  bool Ok = false;
  std::string Source = readFile(Input, Ok);
  if (!Ok) {
    std::fprintf(stderr, "bor-as: error: cannot read '%s'\n", Input);
    return 1;
  }

  AssemblyResult R = assemble(Source);
  if (!R.Ok) {
    std::fprintf(stderr, "bor-as: %s: %s\n", Input, R.Error.c_str());
    return 1;
  }
  if (!saveProgram(R.Prog, Output)) {
    std::fprintf(stderr, "bor-as: error: cannot write '%s'\n", Output);
    return 1;
  }
  std::fprintf(stderr, "bor-as: %zu instructions, %zu data bytes -> %s\n",
               R.Prog.numInsts(), R.Prog.data().size(), Output);
  return 0;
}
